module Trace = Leopard_trace.Trace
module Rng = Leopard_util.Rng
module Engine = Minidb.Engine
module Sim = Minidb.Sim
module Net = Leopard_net

type latency = {
  net_mean_ns : float;
  think_mean_ns : float;
  op_gap_ns : float;
  commit_extra_ns : float;
}

let default_latency =
  {
    net_mean_ns = 50_000.0;
    think_mean_ns = 100_000.0;
    op_gap_ns = 10_000.0;
    commit_extra_ns = 30_000.0;
  }

type stop = Txn_count of int | Sim_time_ns of int

(* Wire mode: requests travel as serialized messages through a seeded
   faulty link to a per-session server queue, instead of being invoked
   in-process.  The fault/client knobs are [Net]'s; [queue_capacity]
   bounds each session's server queue (load shedding beyond it);
   [session_timeout_ns] is how long the server keeps an orphaned
   transaction alive after its client gave up before reaping it. *)
type net_config = {
  net_fault : Net.Faulty_link.config;
  net_client : Net.Client.config;
  queue_capacity : int;
  session_timeout_ns : int;
}

let net_config ?(fault = Net.Faulty_link.disabled)
    ?(client = Net.Client.config ()) ?(queue_capacity = 64)
    ?(session_timeout_ns = 1_000_000) () =
  if queue_capacity < 1 then
    invalid_arg "Run.net_config: queue_capacity must be >= 1";
  if session_timeout_ns <= 0 then
    invalid_arg "Run.net_config: session_timeout_ns must be positive";
  { net_fault = fault; net_client = client; queue_capacity; session_timeout_ns }

(* Per-run wire state, created at config time (like [Chaos.create]) so an
   online monitor can poll [ambiguous] while the run progresses. *)
type net_rt = {
  ncfg : net_config;
  link : Net.Faulty_link.t;
  net_rngs : Rng.t array;  (* per-client retry/backoff jitter streams *)
  mutable ambiguous : (int * int * int) list;
      (* (client, txn, gave_up_at) of commits with unknown outcome;
         newest first *)
}

let net_ambiguous rt = List.rev rt.ambiguous

type config = {
  spec : Leopard_workload.Spec.t;
  profile : Minidb.Profile.t;
  level : Minidb.Isolation.level;
  faults : Minidb.Fault.Set.t;
  clients : int;
  stop : stop;
  seed : int;
  latency : latency;
  latency_of : (int -> latency) option;
  observer : (Trace.t -> unit) option;
  tick : (int * (unit -> unit)) option;
  chaos : Chaos.t option;
  net : net_rt option;
  max_retries : int;
  retry_backoff_ns : float;
  wal : bool;
  crash_at : int list;  (* simulated instants of server crashes *)
  wal_faults : Minidb.Wal.fault_cfg option;
}

let config ?(faults = Minidb.Fault.Set.empty) ?(clients = 8) ?(seed = 42)
    ?(latency = default_latency) ?latency_of ?observer ?tick ?chaos ?net
    ?(max_retries = 0) ?(retry_backoff_ns = 100_000.0) ?(wal = false)
    ?(crash_at = []) ?wal_faults ~spec ~profile ~level ~stop () =
  {
    spec;
    profile;
    level;
    faults;
    clients;
    stop;
    seed;
    latency;
    latency_of;
    observer;
    tick;
    chaos = Option.map (fun c -> Chaos.create ~clients c) chaos;
    net =
      Option.map
        (fun n ->
          let root = Rng.create n.net_fault.Net.Faulty_link.seed in
          (* the link splits the first [clients] streams off this same
             seed; skip past them so a client's retry jitter never shares
             a state with its fault stream *)
          for _ = 1 to clients do
            ignore (Rng.split root)
          done;
          {
            ncfg = n;
            link = Net.Faulty_link.create ~sessions:clients n.net_fault;
            net_rngs = Array.init clients (fun _ -> Rng.split root);
            ambiguous = [];
          })
        net;
    max_retries;
    retry_backoff_ns;
    (* crashing or injecting durability faults implies logging *)
    wal = wal || crash_at <> [] || wal_faults <> None;
    crash_at;
    wal_faults;
  }

let latency_for cfg client =
  match cfg.latency_of with Some f -> f client | None -> cfg.latency

type epoch_mark = {
  at : int;  (** simulated instant of the crash *)
  replayed : int;  (** WAL records applied during recovery *)
  damaged : int;  (** records torn/lost/reordered/duplicated *)
}

type outcome = {
  client_traces : Trace.t list array;
  op_trace : (int, Trace.t) Hashtbl.t;
  truth_deps : Minidb.Ground_truth.dep list;
  committed : int -> bool;
  peek : Leopard_trace.Cell.t -> Trace.value option;
  snapshot :
    unit -> (Leopard_trace.Cell.t * Minidb.Version_store.version list) list;
      (* committed-state image of the live store; see
         [Version_store.snapshot_committed] *)
  commits : int;
  aborts : int;
  aborts_fuw : int;
  aborts_certifier : int;
  aborts_deadlock : int;
  aborts_crash : int;
  deadlocks : int;
  restarts : int;
  epochs : epoch_mark list;  (* crash/restart boundaries, oldest first *)
  wal_appended : int;
  wal_damaged : int;
  sim_duration_ns : int;
  ops : int;
  retries : int;
  crashed_clients : int list;
  indeterminate_txns : int list;
  chaos_dropped : int;
  chaos_duplicated : int;
  chaos_delayed : int;
  net : net_stats option;
}

and net_stats = {
  resets : int;
  msg_dropped : int;
  msg_duplicated : int;
  msg_delayed : int;
  msg_reordered : int;
  rejected : int;  (* requests load-shed by the server *)
  resends : int;
  give_ups : int;
  ambiguous : (int * int * int) list;
      (* (client, txn, gave_up_at) of ambiguous commits, oldest first *)
  dup_commit_acks : int;  (* commits acknowledged idempotently *)
}

type state = {
  cfg : config;
  sim : Sim.t;
  engine : Engine.t;
  net_exec : (Net.Server.t * Net.Client.t array) option;
  buffers : Trace.t list ref array;  (* newest first; reversed at the end *)
  op_trace : (int, Trace.t) Hashtbl.t;
  mutable next_op : int;
  mutable finished_txns : int;
  mutable retries : int;
  mutable live_clients : int;
      (* clients that will still schedule work; when it reaches 0 the
         tick loop must stop too, or a run whose clients all crashed
         before the stop condition would spin forever *)
  mutable stop_now : bool;
}

let fresh_op st =
  let id = st.next_op in
  st.next_op <- id + 1;
  id

let should_stop st =
  st.stop_now
  ||
  match st.cfg.stop with
  | Txn_count n -> st.finished_txns >= n
  | Sim_time_ns t -> Sim.now st.sim >= t

let delay rng mean = 1 + int_of_float (Rng.exponential rng mean)

(* Issue one request: network hop to the server, engine execution
   (possibly delayed by lock queues), network hop back. *)
let issue st rng ~client ~txn ~request ~receive =
  let latency = latency_for st.cfg client in
  let ts_bef = Sim.now st.sim in
  let d_in = delay rng latency.net_mean_ns in
  let op_id = fresh_op st in
  Sim.schedule_after st.sim ~delay:d_in (fun () ->
      Engine.exec st.engine txn ~op_id request ~k:(fun result ->
          let extra =
            match request with
            | Engine.Commit -> delay rng latency.commit_extra_ns
            | Engine.Read _ | Engine.Write _ | Engine.Abort -> 0
          in
          let d_out = extra + delay rng latency.net_mean_ns in
          Sim.schedule_after st.sim ~delay:d_out (fun () ->
              receive ~op_id ~ts_bef result)))

(* Issue one request through the wire.  The workload rng supplies exactly
   the draws the in-process [issue] makes — [d_in] at the issue instant,
   commit-extra + [d_out] at each reply instant — so a zero-fault link
   replays the in-process run byte-for-byte; every retry/backoff/fault
   decision comes from the net streams instead.  [on_undelivered] fires
   when the call settles without a server outcome (load-shed or
   every attempt timed out/reset): for a COMMIT that is the ambiguous
   case, for anything else a definite client-side abort. *)
let issue_net st ~server ~nclient rng ~client ~txn ~request ~receive
    ~on_undelivered =
  let latency = latency_for st.cfg client in
  let ts_bef = Sim.now st.sim in
  let d_in = delay rng latency.net_mean_ns in
  let op_id = fresh_op st in
  Net.Server.register_txn server txn;
  let body =
    match request with
    | Engine.Read { cells; locking; predicate } ->
      Net.Wire.Read { cells; locking; predicate }
    | Engine.Write items -> Net.Wire.Write items
    | Engine.Commit -> Net.Wire.Commit { token = Engine.txn_id txn }
    | Engine.Abort -> Net.Wire.Abort
  in
  Net.Client.call nclient ~txn:(Engine.txn_id txn) ~op:op_id ~body
    ~first_send_delay_ns:d_in
    ~resp_base_delay_ns:(fun _resp ->
      let extra =
        match request with
        | Engine.Commit -> delay rng latency.commit_extra_ns
        | Engine.Read _ | Engine.Write _ | Engine.Abort -> 0
      in
      extra + delay rng latency.net_mean_ns)
    ~k:(fun outcome ->
      match outcome with
      | Net.Client.Reply (Net.Wire.Ok_read items) ->
        receive ~op_id ~ts_bef (Engine.Ok_read items)
      | Net.Client.Reply Net.Wire.Ok_write ->
        receive ~op_id ~ts_bef Engine.Ok_write
      | Net.Client.Reply Net.Wire.Ok_commit ->
        receive ~op_id ~ts_bef Engine.Ok_commit
      | Net.Client.Reply (Net.Wire.Refused reason) ->
        receive ~op_id ~ts_bef (Engine.Err reason)
      | Net.Client.Reply (Net.Wire.Began _) ->
        assert false (* the harness begins transactions client-side *)
      | Net.Client.Reply Net.Wire.Rejected | Net.Client.No_reply ->
        on_undelivered ~op_id ~ts_bef)

(* Route a request through the configured transport. *)
let transport st rng ~client ~txn ~request ~receive ~on_undelivered =
  match st.net_exec with
  | None -> issue st rng ~client ~txn ~request ~receive
  | Some (server, nclients) ->
    issue_net st ~server ~nclient:nclients.(client) rng ~client ~txn ~request
      ~receive ~on_undelivered

let deliver_now st ~client trace =
  st.buffers.(client) := trace :: !(st.buffers.(client));
  match st.cfg.observer with Some f -> f trace | None -> ()

let emit st ~client ~txn_id ~op_id ~ts_bef payload =
  let trace =
    { Trace.ts_bef; ts_aft = Sim.now st.sim; txn = txn_id; client; payload }
  in
  match st.cfg.chaos with
  | None ->
    Hashtbl.replace st.op_trace op_id trace;
    deliver_now st ~client trace;
    trace
  | Some ch ->
    (* what the client logs carries its (possibly skewed) clock; what the
       collector receives additionally went through the lossy path *)
    let s = Chaos.skew ch ~client in
    let trace =
      if s = 0 then trace
      else
        {
          trace with
          Trace.ts_bef = trace.Trace.ts_bef + s;
          ts_aft = trace.Trace.ts_aft + s;
        }
    in
    Hashtbl.replace st.op_trace op_id trace;
    List.iter
      (fun (delay_ns, tr) ->
        if delay_ns = 0 then deliver_now st ~client tr
        else
          Sim.schedule_after st.sim ~delay:delay_ns (fun () ->
              deliver_now st ~client tr))
      (Chaos.deliver ch ~client trace);
    trace

(* Bounded exponential backoff: mean doubles per retry, capped at 32x. *)
let backoff_mean_ns ~retry_backoff_ns ~tries =
  retry_backoff_ns *. float_of_int (1 lsl min tries 5)

let backoff_mean st tries =
  backoff_mean_ns ~retry_backoff_ns:st.cfg.retry_backoff_ns ~tries

let client_done st = st.live_clients <- st.live_clients - 1

let rec run_client st rng ~client =
  if should_stop st then client_done st
  else
    attempt st rng ~client
      ~prog:(st.cfg.spec.Leopard_workload.Spec.next_txn rng)
      ~tries:0

(* One transaction attempt.  [prog] is re-run verbatim (as a fresh
   transaction) when the engine aborts it and retries remain. *)
and attempt st rng ~client ~prog ~tries =
  begin
    let txn = Engine.begin_txn st.engine ~client in
    let txn_id = Engine.txn_id txn in
    let next_txn () =
      if should_stop st then client_done st
      else
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).think_mean_ns)
          (fun () -> run_client st rng ~client)
    in
    let finish_txn () =
      st.finished_txns <- st.finished_txns + 1;
      next_txn ()
    in
    let abort_and_finish ?(retryable = false) ~op_id ~ts_bef () =
      ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Abort);
      st.finished_txns <- st.finished_txns + 1;
      if should_stop st then client_done st
      else if retryable && tries < st.cfg.max_retries then begin
        st.retries <- st.retries + 1;
        Sim.schedule_after st.sim
          ~delay:(delay rng (backoff_mean st tries))
          (fun () ->
            if should_stop st then client_done st
            else attempt st rng ~client ~prog ~tries:(tries + 1))
      end
      else next_txn ()
    in
    (* Server-side reaper: abort an orphaned transaction (its client
       crashed or gave up) once the session timeout elapses, releasing
       its locks.  A commit that sneaks in before the reaper fires wins —
       [txn_alive] is checked at reap time. *)
    let reap_after ~timeout_ns =
      Sim.schedule_after st.sim ~delay:timeout_ns (fun () ->
          if Engine.txn_alive txn then
            Engine.exec st.engine txn ~op_id:(fresh_op st) Engine.Abort
              ~k:(fun _ -> ()))
    in
    (* A wire call that settled without a server outcome.  A COMMIT is the
       ambiguous case: any attempt may have been applied, so the client
       logs no terminal trace, records the give-up for the checker, and
       moves on.  Anything else is a definite client-side abort — the
       client never sent (and never will send) COMMIT, and the reaper
       guarantees the server-side abort — so the abort trace is truthful. *)
    let on_undelivered ~request ~op_id ~ts_bef =
      let timeout_ns =
        match st.cfg.net with
        | Some rt -> rt.ncfg.session_timeout_ns
        | None -> assert false (* only the wire transport settles this way *)
      in
      reap_after ~timeout_ns;
      match request with
      | Engine.Commit ->
        (match st.cfg.net with
        | Some rt ->
          rt.ambiguous <- (client, txn_id, Sim.now st.sim) :: rt.ambiguous
        | None -> ());
        finish_txn ()
      | Engine.Abort -> abort_and_finish ~op_id ~ts_bef ()
      | Engine.Read _ | Engine.Write _ ->
        abort_and_finish ~retryable:true ~op_id ~ts_bef ()
    in
    (* Chaos crash: the request leaves for the server, but the client dies
       before the reply — nothing is logged and nothing further is issued.
       A crashed commit may have taken effect server-side (indeterminate);
       an orphaned read/write transaction is reaped by the server after
       the session timeout, releasing its locks. *)
    let issue_op ~request ~receive =
      match st.cfg.chaos with
      | Some ch when Chaos.roll_crash ch ~client ->
        Chaos.note_crash ch ~client ~txn:txn_id;
        st.finished_txns <- st.finished_txns + 1;
        client_done st;
        let dead_receive ~op_id:_ ~ts_bef:_ _result =
          match request with
          | Engine.Commit | Engine.Abort -> ()
          | Engine.Read _ | Engine.Write _ ->
            reap_after ~timeout_ns:(Chaos.cfg ch).Chaos.session_timeout_ns
        in
        transport st rng ~client ~txn ~request ~receive:dead_receive
          ~on_undelivered:(fun ~op_id ~ts_bef ->
            dead_receive ~op_id ~ts_bef (Engine.Err Engine.User_abort))
      | Some _ | None ->
        transport st rng ~client ~txn ~request ~receive
          ~on_undelivered:(on_undelivered ~request)
    in
    let rec step (prog : Leopard_workload.Program.t) =
      let continue next =
        Sim.schedule_after st.sim
          ~delay:(delay rng (latency_for st.cfg client).op_gap_ns)
          (fun () -> step next)
      in
      match prog with
      | Leopard_workload.Program.Finish ->
        issue_op ~request:Engine.Commit
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_commit ->
              ignore (emit st ~client ~txn_id ~op_id ~ts_bef Trace.Commit);
              finish_txn ()
            | Engine.Err
                ( Engine.Deadlock_victim | Engine.Fuw_conflict
                | Engine.Certifier_conflict _ | Engine.User_abort
                | Engine.Server_crash ) ->
              abort_and_finish ~retryable:true ~op_id ~ts_bef ()
            | Engine.Ok_read _ | Engine.Ok_write ->
              assert false)
      | Leopard_workload.Program.Rollback ->
        issue_op ~request:Engine.Abort
          ~receive:(fun ~op_id ~ts_bef _result ->
            (* a user-requested rollback is intentional, not retried *)
            abort_and_finish ~op_id ~ts_bef ())
      | Leopard_workload.Program.Read { cells; locking; predicate; k } ->
        issue_op
          ~request:(Engine.Read { cells; locking; predicate })
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_read items ->
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef
                   (Trace.Read { items; locking }));
              continue (k items)
            | Engine.Err
                ( Engine.Deadlock_victim | Engine.Fuw_conflict
                | Engine.Certifier_conflict _ | Engine.User_abort
                | Engine.Server_crash ) ->
              abort_and_finish ~retryable:true ~op_id ~ts_bef ()
            | Engine.Ok_write | Engine.Ok_commit -> assert false)
      | Leopard_workload.Program.Write { items; k } ->
        issue_op ~request:(Engine.Write items)
          ~receive:(fun ~op_id ~ts_bef result ->
            match result with
            | Engine.Ok_write ->
              let titems =
                List.map
                  (fun (cell, value) -> { Trace.cell; value })
                  items
              in
              ignore
                (emit st ~client ~txn_id ~op_id ~ts_bef (Trace.Write titems));
              continue (k ())
            | Engine.Err
                ( Engine.Deadlock_victim | Engine.Fuw_conflict
                | Engine.Certifier_conflict _ | Engine.User_abort
                | Engine.Server_crash ) ->
              abort_and_finish ~retryable:true ~op_id ~ts_bef ()
            | Engine.Ok_read _ | Engine.Ok_commit -> assert false)
    in
    step prog
  end

let execute cfg =
  let sim = Sim.create () in
  let wal =
    if cfg.wal then Some (Minidb.Wal.create ?faults:cfg.wal_faults ())
    else None
  in
  let engine =
    Engine.create ?wal sim ~profile:cfg.profile ~level:cfg.level
      ~faults:cfg.faults
  in
  Engine.load engine cfg.spec.Leopard_workload.Spec.initial;
  (* Crash/restart epochs: each instant kills the server between events
     and recovers it from the WAL before the next event runs.  Scheduled
     up front from the config, never drawn from the workload's RNG. *)
  let epochs = ref [] in
  List.iter
    (fun at ->
      Sim.schedule sim ~at:(max 1 at) (fun () ->
          let s = Engine.crash_recover engine in
          epochs :=
            {
              at = Sim.now sim;
              replayed = s.Minidb.Recovery.replayed;
              damaged = Minidb.Wal.damaged_records s.Minidb.Recovery.damage;
            }
            :: !epochs))
    (List.sort_uniq Int.compare cfg.crash_at);
  let net_exec =
    Option.map
      (fun rt ->
        let server =
          Net.Server.create ~engine ~queue_capacity:rt.ncfg.queue_capacity
        in
        let nclients =
          Array.init cfg.clients (fun i ->
              Net.Client.create sim ~rng:rt.net_rngs.(i) ~link:rt.link ~server
                ~session:i rt.ncfg.net_client)
        in
        (server, nclients))
      cfg.net
  in
  let st =
    {
      cfg;
      sim;
      engine;
      net_exec;
      buffers = Array.init cfg.clients (fun _ -> ref []);
      op_trace = Hashtbl.create 4096;
      next_op = 0;
      finished_txns = 0;
      retries = 0;
      live_clients = cfg.clients;
      stop_now = false;
    }
  in
  let root = Rng.create cfg.seed in
  for client = 0 to cfg.clients - 1 do
    let rng = Rng.split root in
    (* Stagger client start-ups slightly, as real clients would. *)
    Sim.schedule_after sim ~delay:(Rng.int rng 10_000) (fun () ->
        run_client st rng ~client)
  done;
  (match cfg.tick with
  | Some (interval_ns, f) ->
    let interval_ns = max 1 interval_ns in
    let rec tick () =
      f ();
      if (not (should_stop st)) && st.live_clients > 0 then
        Sim.schedule_after sim ~delay:interval_ns tick
    in
    Sim.schedule_after sim ~delay:interval_ns tick
  | None -> ());
  Sim.run sim;
  let committed id = Engine.committed engine id in
  {
    client_traces = Array.map (fun r -> List.rev !r) st.buffers;
    op_trace = st.op_trace;
    truth_deps =
      Minidb.Ground_truth.deps (Engine.ground_truth engine) ~committed;
    committed;
    peek = (fun cell -> Engine.peek engine cell);
    snapshot = (fun () -> Engine.snapshot_committed engine);
    commits = Engine.commits engine;
    aborts = Engine.aborts engine;
    aborts_fuw = Engine.aborts_by engine Engine.Fuw_conflict;
    aborts_certifier = Engine.aborts_by engine (Engine.Certifier_conflict "");
    aborts_deadlock = Engine.aborts_by engine Engine.Deadlock_victim;
    aborts_crash = Engine.aborts_by engine Engine.Server_crash;
    deadlocks = Engine.deadlocks engine;
    restarts = Engine.restarts engine;
    epochs = List.rev !epochs;
    wal_appended = Engine.wal_appended engine;
    wal_damaged =
      List.fold_left (fun acc e -> acc + e.damaged) 0 !epochs;
    sim_duration_ns = Sim.now sim;
    ops = Engine.ops_executed engine;
    retries = st.retries;
    crashed_clients =
      (match cfg.chaos with
      | Some ch -> Chaos.crashed_clients ch
      | None -> []);
    indeterminate_txns =
      (match cfg.chaos with
      | Some ch -> Chaos.indeterminate_txns ch
      | None -> []);
    chaos_dropped =
      (match cfg.chaos with Some ch -> Chaos.dropped ch | None -> 0);
    chaos_duplicated =
      (match cfg.chaos with Some ch -> Chaos.duplicated ch | None -> 0);
    chaos_delayed =
      (match cfg.chaos with Some ch -> Chaos.delayed ch | None -> 0);
    net =
      (match (cfg.net, st.net_exec) with
      | Some rt, Some (server, nclients) ->
        let sum f = Array.fold_left (fun acc c -> acc + f c) 0 nclients in
        Some
          {
            resets = Net.Faulty_link.resets rt.link;
            msg_dropped = Net.Faulty_link.dropped rt.link;
            msg_duplicated = Net.Faulty_link.duplicated rt.link;
            msg_delayed = Net.Faulty_link.delayed rt.link;
            msg_reordered = Net.Faulty_link.reordered rt.link;
            rejected = Net.Server.rejected server;
            resends = sum Net.Client.resends;
            give_ups = sum Net.Client.give_ups;
            ambiguous = List.rev rt.ambiguous;
            dup_commit_acks = Engine.duplicate_commit_acks engine;
          }
      | _ -> None);
  }

let all_traces_sorted outcome =
  let all =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] outcome.client_traces
  in
  List.sort Trace.compare_by_bef all
