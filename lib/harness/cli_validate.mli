(** Pure validators for command-line numeric options.

    Fault-plane flags (probabilities, crash schedules, timeouts, queue
    bounds) are validated on their raw values before any configuration
    object is built — and before any "all rates are zero, plane
    disabled" short-circuit, so a nonsense value is a usage error even
    when it would have had no effect.  Each validator returns
    [Some error] on the first problem it finds, [None] when the value is
    acceptable; the driver prints {!error_to_string} on stderr and exits
    2 (reserved for usage errors; verdicts use 0/1/3). *)

type error = { flag : string; msg : string }

val error_to_string : error -> string
(** ["invalid <flag>: <msg>"] — the one-line stderr message. *)

val prob : flag:string -> float -> error option
(** Probabilities must lie in [[0, 1]]; NaN is rejected too. *)

val positive : flag:string -> int -> error option
(** Timeouts, queue capacities, retry budgets, windows: must be [> 0]. *)

val non_negative : flag:string -> int -> error option
(** Delay bounds and skew magnitudes: must be [>= 0]. *)

val crash_schedule : flag:string -> int list -> error option
(** A [--crash-at] schedule must be strictly ascending positive
    instants: duplicates and out-of-order entries are rejected rather
    than silently sorted or deduplicated. *)

val window : flag:string -> int * int -> error option
(** A half-open [(from_ns, until_ns)] window (e.g. [--repl-partition])
    must have a non-negative start and a strictly later end. *)

val shard_count : flag:string -> int -> error option
(** A [--shards] count is either [0] (plane disabled) or at least [2] —
    a one-shard "group" would silently skip every cross-shard path. *)

type planes = {
  net : bool;  (** [--net]: the client wire plane *)
  repl : bool;  (** [--repl]: engine-level primary/follower replication *)
  shards : bool;  (** [--shards]: the 2PC shard plane *)
  repl_per_shard : int;  (** [--repl-per-shard]: replicas per shard *)
  shard_failovers : bool;  (** any [--shard-failover-at] given *)
  shard_repl_drop : bool;
      (** [--shard-repl-drop] given (per-shard replication-link drop
          override) *)
}

val composition : planes -> error option
(** The fault-plane composition matrix, unit-testable and separate from
    the CLI driver.  Exclusive pairs: [--net]/[--repl] (one wire plane),
    [--net]/[--shards] (the 2PC protocol already rides the shard wire),
    [--repl]/[--shards] (one engine-level topology — replicate each
    shard with [--repl-per-shard] instead).  Compositions:
    [--shards]+[--wal] (participant WALs), [--shards]+[--repl-per-shard]
    (a replica set per shard), and both at once; [--shard-failover-at]
    and [--shard-repl-drop] require [--repl-per-shard]. *)

type checkpointing = {
  gc_watermark : int;  (** [--gc-watermark]: truncation cadence, 0 = off *)
  check_checkpoint : bool;  (** [--check-checkpoint FILE] given *)
  resume_check : bool;  (** [--resume-check] given *)
  kill_after : int;  (** [--check-kill-after]: SIGKILL drill point, 0 = off *)
  check_mode : bool;  (** [--check FILE] given (offline trace-file mode) *)
}

val checkpointing : checkpointing -> error option
(** The bounded-memory / resume flag chain: [--check-checkpoint] needs a
    truncating checker ([--gc-watermark N]); [--resume-check] and
    [--check-kill-after] need the checkpoint file {e and} [--check]
    (only the offline pass can re-read its input from a cursor); the
    kill drill additionally needs the progress it destroys to have been
    checkpointed.  A flag that would be silently inert is a usage error
    instead. *)

val choice : flag:string -> known:string list -> string -> error option
(** Campaign-grid axis values ([--cell], [--cell-workload]) must name a
    known class/workload; the error lists the known names. *)

val jobs : flag:string -> int -> error option
(** A [--jobs] count is non-negative; [0] means "pick the recommended
    domain count". *)

val first_error : error option list -> error option
(** The first [Some] in flag order, so the reported error matches the
    leftmost offending option. *)
