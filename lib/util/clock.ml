(* The linter (D002) exempts exactly this file; everything else calls
   [Clock.wall]. *)
let wall () = Sys.time ()
