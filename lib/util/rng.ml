type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* SplitMix64 finaliser: variant 13 of Stafford's mixers. *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let derive ~seed ~index =
  if index < 0 then invalid_arg "Rng.derive: index must be non-negative";
  (* The [index+1]-th output of [create seed]'s stream, computed without
     stepping: SplitMix64's state after n draws is seed-state + n*gamma. *)
  let state =
    Int64.add
      (mix64 (Int64.of_int seed))
      (Int64.mul golden_gamma (Int64.of_int (index + 1)))
  in
  Int64.to_int (mix64 state) land max_int

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits keeps the result unbiased. *)
  let mask = max_int in
  let rec go () =
    let raw = Int64.to_int (next_int64 t) land mask in
    let r = raw mod bound in
    if raw - r > mask - bound + 1 then go () else r
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
