(** The one sanctioned wall-clock read (lint rule D002).

    Simulated time drives every trace timestamp, every fault schedule
    and every verdict — those must never touch the host clock, or a
    seeded run stops replaying byte-identically.  The only legitimate
    consumers of real time are *reporting* paths: "verification took
    1.2 s of CPU" in a summary, a benchmark harness.  Routing them all
    through this module makes the exception auditable: the linter bans
    [Sys.time]/[Unix.gettimeofday] everywhere else, so a wall-clock
    read outside this file is a build error, not a code-review catch. *)

val wall : unit -> float
(** Processor time in seconds ([Sys.time]); subtract two samples for a
    duration.  Reporting only — the value must never reach a trace,
    a schedule or a verdict. *)
