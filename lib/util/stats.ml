type t = {
  mutable count : int;
  mutable sum : float;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; sum = 0.0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.mean
let stddev t = if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.count)
let min t = t.min
let max t = t.max

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean =
      a.mean +. (delta *. float_of_int b.count /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
          /. float_of_int n)
    in
    {
      count = n;
      sum = a.sum +. b.sum;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
  end

let percentile samples p =
  match samples with
  | [] -> 0.0
  | _ ->
    let arr = Array.of_list samples in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
    arr.(idx)
