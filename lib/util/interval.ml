type t = { bef : int; aft : int }

let make ~bef ~aft =
  if bef >= aft then
    invalid_arg
      (Printf.sprintf "Interval.make: need bef < aft, got (%d, %d)" bef aft);
  { bef; aft }

let bef t = t.bef
let aft t = t.aft
let duration t = t.aft - t.bef
let certainly_before a b = a.aft <= b.bef
let possibly_before a b = a.bef < b.aft
let overlaps a b = not (certainly_before a b) && not (certainly_before b a)

let compare_by_bef a b =
  let c = Int.compare a.bef b.bef in
  if c <> 0 then c else Int.compare a.aft b.aft

let compare_by_aft a b =
  let c = Int.compare a.aft b.aft in
  if c <> 0 then c else Int.compare a.bef b.bef

let equal a b = a.bef = b.bef && a.aft = b.aft

let hull a b = { bef = min a.bef b.bef; aft = max a.aft b.aft }

let pp ppf t = Format.fprintf ppf "(%d, %d)" t.bef t.aft
let to_string t = Format.asprintf "%a" pp t
