(** Deterministic pseudo-random number generation.

    Every source of randomness in this repository — workload key choices,
    think times, simulated network latencies, property-test inputs — flows
    through an explicit [Rng.t] so that whole experiments are reproducible
    bit-for-bit from a single seed.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    statistically strong, splittable generator.  Splittability matters here:
    each simulated client derives an independent stream from the experiment
    seed, so adding a client never perturbs the streams of the others. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of [t]'s
    future output.  Both generators advance independently afterwards. *)

val copy : t -> t
(** [copy t] duplicates the exact current state (same future stream). *)

val derive : seed:int -> index:int -> int
(** [derive ~seed ~index] is the [index+1]-th raw output of
    [create seed]'s stream, folded to a non-negative [int] — a pure
    function of [(seed, index)] with no generator state.  Campaign grids
    use it to give every cell an independent, citable seed: the same
    [(campaign seed, cell index)] pair always names the same cell seed,
    so a failing cell's exact reproducing command line can be printed
    without consulting any results database.  Raises [Invalid_argument]
    on a negative [index]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean; used for think times and latency jitter. *)
