type 'a entry = { value : 'a; seq : int }

type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable peak : int;
}

let create ~compare:cmp =
  { compare = cmp; data = [||]; size = 0; next_seq = 0; peak = 0 }

let length t = t.size
let is_empty t = t.size = 0
let peak_length t = t.peak

let entry_lt t a b =
  let c = t.compare a.value b.value in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow t filler =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let fresh = Array.make ncap filler in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && entry_lt t t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let entry = { value; seq = t.next_seq } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  if t.size > t.peak then t.peak <- t.size;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Min_heap.pop_exn: empty heap"

let drain_while t keep =
  let rec go acc =
    match peek t with
    | Some v when keep v ->
      ignore (pop t);
      go (v :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let clear t = t.size <- 0

let to_sorted_list t =
  let copy =
    {
      compare = t.compare;
      data = Array.sub t.data 0 (Array.length t.data);
      size = t.size;
      next_seq = t.next_seq;
      peak = t.peak;
    }
  in
  let rec go acc =
    match pop copy with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
