(** The named-workload table — one catalogue shared by the CLI and the
    campaign orchestrator, so a cell class naming ["smallbank"] and the
    reproducing command line's [-w smallbank] are guaranteed to build
    the same spec with the same parameters.

    [find] returns a {e fresh} spec instance per call: specs carry
    mutable generator state (value counters), so concurrent runs —
    campaign cells on separate domains — must never share one. *)

val names : string list
(** Every workload name the CLI accepts, in its documented order. *)

val find : string -> Spec.t option
(** [find name] builds a fresh spec, or [None] for an unknown name. *)
