let all =
  [
    ("ycsb", fun () -> Ycsb.spec ~theta:0.8 ());
    ("ycsb+t", fun () -> Ycsb_t.spec ());
    ("tatp", fun () -> Tatp.spec ());
    ("blindw-w", fun () -> Blindw.spec Blindw.W);
    ("blindw-rw", fun () -> Blindw.spec Blindw.RW);
    ("blindw-rw+", fun () -> Blindw.spec Blindw.RW_plus);
    ("smallbank", fun () -> Smallbank.spec ());
    ("tpcc", fun () -> Tpcc.spec ());
  ]

let names = List.map fst all

let find name = Option.map (fun mk -> mk ()) (List.assoc_opt name all)
