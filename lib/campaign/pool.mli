(** A bounded domain pool with deterministic result placement.

    [map ~jobs items f] applies [f] to every element of [items] using at
    most [jobs] domains (the calling domain counts as one; [jobs <= 1]
    runs serially with no domain spawned) and returns the results in
    {e item order} — slot [i] always holds [f items.(i)], regardless of
    which domain computed it or when it finished.  For a pure [f] the
    returned array is therefore identical for every [jobs] value, which
    is the property the campaign's serial/parallel byte-identity test
    pins down.

    [f] should not raise (the campaign runner records exceptions as
    [Crashed] outcomes instead); if it does, every worker is still
    joined and the first exception is re-raised on the calling domain
    with its original backtrace. *)

val map : jobs:int -> 'a array -> ('a -> 'b) -> 'b array
