(** Crash-safe campaign checkpoints: completed cells on disk, so an
    interrupted sweep resumes re-running only the incomplete ones.

    The file is an optimization, never an authority.  [load] trusts a
    record only when every byte of it checks out (per-record checksum,
    field-level unescape, index in range and unseen); anything
    suspicious degrades — a foreign or header-damaged file is ignored
    wholesale, a corrupt record drops itself and everything after it —
    always with a one-line warning and never by crashing or by silently
    marking an unfinished cell done.  A cell a damaged checkpoint
    "loses" is simply re-run; determinism makes the re-run free. *)

val write_header : out_channel -> fingerprint:string -> cells:int -> unit
(** Bind a fresh checkpoint file to a grid.  Call once, before any
    {!append}. *)

val append : out_channel -> index:int -> Runner.outcome -> unit
(** Append one completed cell and flush.  Callers running cells on
    multiple domains must serialize appends (the orchestrator holds a
    mutex); records may land in any order. *)

val load :
  path:string ->
  fingerprint:string ->
  cells:int ->
  (int * Runner.outcome) list * string option
(** The trusted prefix of a checkpoint, in file order, plus an optional
    one-line warning describing what was discarded and why.  A missing
    file is a silent fresh start ([[], None]).  Floats round-trip
    exactly (bit-pattern encoding), so a resumed campaign's results DB
    is byte-identical to an uninterrupted run's. *)
