(* Declarative campaign grids.

   A grid is pure data; [cells] is a pure function of it.  Per-cell seeds
   come from Rng.derive (SplitMix64 positional derivation), so cell N of
   campaign seed S is the same run whether it executes first on a worker
   domain, last in a serial sweep, or standalone from the CLI line this
   module renders — that positional independence is the foundation of the
   serial/parallel byte-identity guarantee and of citable failures. *)

type plane =
  | Baseline
  | Chaos of { crash : float; drop : float; dup : float; delay : float }
  | Recovery of {
      crash_at : int list;
      torn : float;
      lost_fsync : float;
      dup_replay : float;
    }
  | Net of { drop : float; dup : float; reset : float; delay : float }
  | Repl of {
      followers : int;
      sync : bool;
      drop : float;
      dup : float;
      hop_ns : int;
      failover_at : int list;
    }
  | Shard of {
      shards : int;
      drop : float;
      hop_ns : int;
      coord_crash_at : int list;
    }
  | Stacked of {
      shards : int;
      per_shard : int;
      hop_ns : int;
      failover_at : (int * int) list;
    }
  | Engine_fault of Minidb.Fault.t list
  | Selftest_crash of int
  | Selftest_hang

type expect = Pass | Fail | Any | Crash | Stall

let expect_to_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Any -> "any"
  | Crash -> "crash"
  | Stall -> "stall"

let expect_of_string = function
  | "pass" -> Some Pass
  | "fail" -> Some Fail
  | "any" -> Some Any
  | "crash" -> Some Crash
  | "stall" -> Some Stall
  | _ -> None

type clazz = {
  cname : string;
  workload : string;
  level : Minidb.Isolation.level;
  txns : int;
  clients : int;
  max_retries : int;
  plane : plane;
  expect : expect;
}

type t = {
  campaign_seed : int;
  seeds_per_class : int;
  classes : clazz list;
}

type cell = { index : int; seed : int; clazz : clazz }

(* {2 Canonical description / fingerprint} *)

let ints is = String.concat "," (List.map string_of_int is)

let pairs ps =
  String.concat ","
    (List.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) ps)

let plane_to_string = function
  | Baseline -> "baseline"
  | Chaos { crash; drop; dup; delay } ->
    Printf.sprintf "chaos(crash=%g,drop=%g,dup=%g,delay=%g)" crash drop dup
      delay
  | Recovery { crash_at; torn; lost_fsync; dup_replay } ->
    Printf.sprintf "recovery(crash-at=[%s],torn=%g,lost-fsync=%g,dup=%g)"
      (ints crash_at) torn lost_fsync dup_replay
  | Net { drop; dup; reset; delay } ->
    Printf.sprintf "net(drop=%g,dup=%g,reset=%g,delay=%g)" drop dup reset
      delay
  | Repl { followers; sync; drop; dup; hop_ns; failover_at } ->
    Printf.sprintf
      "repl(followers=%d,ack=%s,drop=%g,dup=%g,hop=%d,failover-at=[%s])"
      followers
      (if sync then "sync" else "async")
      drop dup hop_ns (ints failover_at)
  | Shard { shards; drop; hop_ns; coord_crash_at } ->
    Printf.sprintf "shard(shards=%d,drop=%g,hop=%d,coord-crash-at=[%s])"
      shards drop hop_ns (ints coord_crash_at)
  | Stacked { shards; per_shard; hop_ns; failover_at } ->
    Printf.sprintf
      "stacked(shards=%d,per-shard=%d,hop=%d,failover-at=[%s])" shards
      per_shard hop_ns (pairs failover_at)
  | Engine_fault faults ->
    Printf.sprintf "engine-fault(%s)"
      (String.concat "," (List.map Minidb.Fault.to_string faults))
  | Selftest_crash n -> Printf.sprintf "selftest-crash(after=%d)" n
  | Selftest_hang -> "selftest-hang"

let describe c =
  Printf.sprintf "%s: %s@%s txns=%d clients=%d retries=%d %s expect=%s"
    c.cname c.workload
    (Minidb.Isolation.level_to_string c.level)
    c.txns c.clients c.max_retries (plane_to_string c.plane)
    (expect_to_string c.expect)

(* FNV-1a 64; checkpoints compare this, so it must depend on every
   parameter that changes what a cell runs. *)
let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let fingerprint g =
  let canon =
    Printf.sprintf "leopard-campaign;seed=%d;seeds-per-class=%d;%s"
      g.campaign_seed g.seeds_per_class
      (String.concat ";" (List.map describe g.classes))
  in
  Printf.sprintf "%016Lx" (fnv64 canon)

(* {2 Construction / expansion} *)

let make ?(campaign_seed = 42) ?(seeds_per_class = 1) classes =
  if classes = [] then invalid_arg "Grid.make: no classes";
  if seeds_per_class <= 0 then
    invalid_arg "Grid.make: seeds_per_class must be positive";
  let seen = ref [] in
  List.iter
    (fun c ->
      if c.txns <= 0 || c.clients <= 0 then
        invalid_arg (Printf.sprintf "Grid.make: %s: non-positive size" c.cname);
      if not (List.mem c.workload Leopard_workload.Catalog.names) then
        invalid_arg
          (Printf.sprintf "Grid.make: %s: unknown workload %s" c.cname
             c.workload);
      if List.mem c.cname !seen then
        invalid_arg (Printf.sprintf "Grid.make: duplicate class %s" c.cname);
      seen := c.cname :: !seen)
    classes;
  { campaign_seed; seeds_per_class; classes }

let cell_count g = List.length g.classes * g.seeds_per_class

let cells g =
  let classes = Array.of_list g.classes in
  Array.init (cell_count g) (fun index ->
      let clazz = classes.(index / g.seeds_per_class) in
      let seed = Leopard_util.Rng.derive ~seed:g.campaign_seed ~index in
      { index; seed; clazz })

let sub_seed cell salt = Leopard_util.Rng.derive ~seed:cell.seed ~index:salt

let scale ~txns ~clients c =
  if txns <= 0 || clients <= 0 then invalid_arg "Grid.scale: non-positive";
  { c with txns; clients }

(* {2 Presets}

   The honest cells reuse the chaos-soak CI parameters (realistic rates
   that exercise every degradation channel); the planted cells use
   engine-level faults whose conviction is workload-driven rather than
   environment-driven, so they convict across the whole seed range. *)

let si = Minidb.Isolation.Snapshot_isolation

let clazz ?(level = si) ?(txns = 600) ?(clients = 8) ?(max_retries = 0)
    ~workload ~plane ~expect cname =
  { cname; workload; level; txns; clients; max_retries; plane; expect }

let presets =
  [
    ("honest-baseline", clazz "honest-baseline" ~workload:"ycsb"
       ~plane:Baseline ~expect:Pass);
    ("honest-chaos", clazz "honest-chaos" ~workload:"ycsb+t"
       ~plane:(Chaos { crash = 0.003; drop = 0.02; dup = 0.02; delay = 0.05 })
       ~expect:Pass);
    (* WAL damage is the one honest plane allowed to convict: a lost
       fsync can resurrect an overwritten value, a genuine provable
       violation of the claimed guarantee (same policy as the CI
       recovery soak leg) — hence Any, not Pass. *)
    ("honest-recovery", clazz "honest-recovery" ~workload:"smallbank"
       ~max_retries:3
       ~plane:
         (Recovery
            {
              crash_at = [ 2_000_000; 5_000_000 ];
              torn = 0.1;
              lost_fsync = 0.3;
              dup_replay = 0.2;
            })
       ~expect:Any);
    ("honest-net", clazz "honest-net" ~workload:"tatp" ~max_retries:2
       ~plane:(Net { drop = 0.05; dup = 0.05; reset = 0.05; delay = 0.05 })
       ~expect:Pass);
    ("honest-repl", clazz "honest-repl" ~workload:"blindw-rw"
       ~plane:
         (Repl
            {
              followers = 2;
              sync = true;
              drop = 0.05;
              dup = 0.05;
              hop_ns = 20_000;
              failover_at = [];
            })
       ~expect:Pass);
    ("honest-repl-failover", clazz "honest-repl-failover"
       ~workload:"blindw-rw+"
       ~plane:
         (Repl
            {
              followers = 2;
              sync = true;
              drop = 0.05;
              dup = 0.0;
              hop_ns = 20_000;
              failover_at = [ 3_000_000 ];
            })
       ~expect:Pass);
    ("honest-shard", clazz "honest-shard" ~workload:"ycsb"
       ~plane:
         (Shard { shards = 3; drop = 0.0; hop_ns = 2_000; coord_crash_at = [] })
       ~expect:Pass);
    ("honest-shard-faulty", clazz "honest-shard-faulty" ~workload:"ycsb"
       ~plane:
         (Shard
            {
              shards = 2;
              drop = 0.15;
              hop_ns = 2_000;
              coord_crash_at = [ 4_000_000 ];
            })
       ~expect:Pass);
    ("honest-stacked", clazz "honest-stacked" ~workload:"smallbank"
       ~plane:
         (Stacked
            {
              shards = 2;
              per_shard = 2;
              hop_ns = 2_000;
              failover_at = [ (3_000_000, 0) ];
            })
       ~expect:Pass);
    ("planted-stale-read", clazz "planted-stale-read" ~workload:"ycsb"
       ~plane:(Engine_fault [ Minidb.Fault.Stale_read ]) ~expect:Fail);
    ("planted-dirty-read", clazz "planted-dirty-read" ~workload:"ycsb+t"
       ~txns:1200 ~clients:16
       ~plane:(Engine_fault [ Minidb.Fault.Dirty_read ]) ~expect:Fail);
    ("planted-lost-update", clazz "planted-lost-update" ~workload:"smallbank"
       ~txns:1200 ~clients:16
       ~plane:(Engine_fault [ Minidb.Fault.No_fuw ]) ~expect:Fail);
    ("planted-partial-commit", clazz "planted-partial-commit"
       ~workload:"ycsb+t"
       ~plane:(Engine_fault [ Minidb.Fault.Partial_commit ]) ~expect:Fail);
    ("selftest-crash", clazz "selftest-crash" ~workload:"ycsb" ~txns:50
       ~plane:(Selftest_crash 5) ~expect:Crash);
    ("selftest-hang", clazz "selftest-hang" ~workload:"ycsb" ~txns:50
       ~plane:Selftest_hang ~expect:Stall);
  ]

let preset_names = List.map fst presets
let find_preset name = List.assoc_opt name presets

(* {2 Standalone reproduction}

   The rendered line must build the exact Run.config the runner builds:
   same workload seed (the cell seed), same fault-plane stream seeds
   (sub_seed with the plane's fixed salt).  Salt registry: 1 = primary
   environment stream (chaos / wire link / WAL damage / replication
   link / shard link), 2 = secondary stream (per-shard replica sets). *)

let common cell =
  let c = cell.clazz in
  Printf.sprintf "leopard -w %s -d postgresql -i %s --txns %d --clients %d \
                  --seed %d"
    c.workload
    (String.lowercase_ascii (Minidb.Isolation.level_to_string c.level))
    c.txns c.clients cell.seed

let retries c = if c.max_retries = 0 then "" else
    Printf.sprintf " --max-retries %d" c.max_retries

let repeat flag is =
  String.concat "" (List.map (Printf.sprintf " %s %d" flag) is)

let cli_line cell =
  let c = cell.clazz in
  let env = sub_seed cell 1 in
  let base = common cell ^ retries c in
  match c.plane with
  | Baseline -> base
  | Chaos { crash; drop; dup; delay } ->
    Printf.sprintf
      "%s --chaos-crash %g --chaos-drop %g --chaos-dup %g --chaos-delay %g \
       --chaos-seed %d"
      base crash drop dup delay env
  | Recovery { crash_at; torn; lost_fsync; dup_replay } ->
    Printf.sprintf
      "%s%s --wal-fault-torn %g --wal-fault-lost-fsync %g --wal-fault-dup %g \
       --wal-fault-seed %d"
      base
      (repeat "--crash-at" crash_at)
      torn lost_fsync dup_replay env
  | Net { drop; dup; reset; delay } ->
    Printf.sprintf
      "%s --net --net-fault-drop %g --net-fault-dup %g --net-fault-reset %g \
       --net-fault-delay %g --net-fault-seed %d"
      base drop dup reset delay env
  | Repl { followers; sync; drop; dup; hop_ns; failover_at } ->
    Printf.sprintf
      "%s --repl %d --repl-ack %s --repl-drop %g --repl-dup %g \
       --repl-hop-ns %d --repl-seed %d%s"
      base followers
      (if sync then "sync" else "async")
      drop dup hop_ns env
      (repeat "--repl-failover-at" failover_at)
  | Shard { shards; drop; hop_ns; coord_crash_at } ->
    Printf.sprintf
      "%s --shards %d --shard-drop %g --shard-hop-ns %d --shard-seed %d%s"
      base shards drop hop_ns env
      (repeat "--shard-coord-crash-at" coord_crash_at)
  | Stacked { shards; per_shard; hop_ns; failover_at } ->
    Printf.sprintf
      "%s --shards %d --repl-per-shard %d --shard-hop-ns %d --shard-seed %d%s"
      base shards per_shard hop_ns env
      (String.concat ""
         (List.map
            (fun (at, shard) ->
              Printf.sprintf " --shard-failover-at %d:%d" shard at)
            failover_at))
  | Engine_fault faults ->
    base
    ^ String.concat ""
        (List.map
           (fun f -> " --fault " ^ Minidb.Fault.to_string f)
           faults)
  | Selftest_crash _ | Selftest_hang ->
    Printf.sprintf
      "# self-test cell %d (campaign machinery only; no standalone CLI \
       equivalent)"
      cell.index
