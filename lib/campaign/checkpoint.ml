(* Crash-safe campaign checkpoints.

   One header line binding the file to a grid (fingerprint + cell
   count), then one record line per completed cell, appended and flushed
   as cells finish.  The file is an optimization, never an authority: a
   resume may trust a record only if every byte of it checks out, and
   anything suspicious degrades to re-running cells — the failure mode
   "checkpoint corruption skipped a cell / crashed the sweep" must not
   exist.

   Robustness rules, in order:
   - missing file: fresh start, silent (first run, not damage);
   - unreadable header, wrong magic/version, fingerprint or cell-count
     mismatch: ignore the whole file with a one-line warning (it
     belongs to some other grid or some other era);
   - a corrupt record line (bad field count, bad number, checksum
     mismatch, out-of-range or duplicate index, failed unescape):
     keep the valid prefix, drop the line and everything after it, warn
     once.  A torn tail from a killed process loses at most the cell
     being written; the cells it names are simply re-run.

   Record fields are individually String.escaped (so no raw tabs or
   newlines survive) and tab-joined behind a per-record FNV-1a checksum
   of the payload.  Floats round-trip through Int64.bits_of_float so a
   resumed campaign reproduces its results DB byte-for-byte. *)

let magic = "leopard-campaign-checkpoint"
let version = "v1"

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let checksum payload = Printf.sprintf "%016Lx" (fnv64 payload)

(* {2 Encoding} *)

let fbits f = Int64.to_string (Int64.bits_of_float f)

let encode_outcome (o : Runner.outcome) =
  match o with
  | Runner.Completed c ->
    let vtag, varg =
      match c.Runner.verdict with
      | Leopard.Checker.Verified -> ("V", "")
      | Leopard.Checker.Violation -> ("B", "")
      | Leopard.Checker.Inconclusive why -> ("I", why)
    in
    let d = c.Runner.deg in
    [
      "C"; vtag; varg; c.Runner.degradation_line;
      string_of_int c.Runner.bugs;
      string_of_int c.Runner.commits;
      string_of_int c.Runner.aborts;
      string_of_int d.Runner.restarts;
      string_of_int d.Runner.recovery_lost;
      string_of_int d.Runner.ambiguous;
      string_of_int d.Runner.lost_suffix;
      string_of_int d.Runner.failovers;
      string_of_int d.Runner.coord_ambiguous;
      string_of_int d.Runner.crashed_clients;
      string_of_int d.Runner.indeterminate;
      fbits c.Runner.p50_ns;
      fbits c.Runner.p99_ns;
      string_of_int c.Runner.sim_ns;
    ]
  | Runner.Crashed { exn_text; backtrace } -> [ "X"; exn_text; backtrace ]
  | Runner.Timeout { budget } -> [ "T"; string_of_int budget ]

let decode_outcome fields =
  let int s = int_of_string_opt s in
  let float_bits s =
    Option.map Int64.float_of_bits (Int64.of_string_opt s)
  in
  match fields with
  | [
   "C"; vtag; varg; degradation_line; bugs; commits; aborts; restarts;
   recovery_lost; ambiguous; lost_suffix; failovers; coord_ambiguous;
   crashed_clients; indeterminate; p50; p99; sim_ns;
  ] -> (
    let verdict =
      match vtag with
      | "V" -> Some Leopard.Checker.Verified
      | "B" -> Some Leopard.Checker.Violation
      | "I" -> Some (Leopard.Checker.Inconclusive varg)
      | _ -> None
    in
    match
      ( verdict, int bugs, int commits, int aborts, int restarts,
        int recovery_lost, int ambiguous, int lost_suffix, int failovers,
        int coord_ambiguous, int crashed_clients, int indeterminate,
        float_bits p50, float_bits p99, int sim_ns )
    with
    | ( Some verdict, Some bugs, Some commits, Some aborts, Some restarts,
        Some recovery_lost, Some ambiguous, Some lost_suffix,
        Some failovers, Some coord_ambiguous, Some crashed_clients,
        Some indeterminate, Some p50_ns, Some p99_ns, Some sim_ns ) ->
      Some
        (Runner.Completed
           {
             Runner.verdict;
             degradation_line;
             bugs;
             commits;
             aborts;
             deg =
               {
                 Runner.restarts;
                 recovery_lost;
                 ambiguous;
                 lost_suffix;
                 failovers;
                 coord_ambiguous;
                 crashed_clients;
                 indeterminate;
               };
             p50_ns;
             p99_ns;
             sim_ns;
           })
    | _ -> None)
  | [ "X"; exn_text; backtrace ] ->
    Some (Runner.Crashed { exn_text; backtrace })
  | [ "T"; budget ] ->
    Option.map (fun budget -> Runner.Timeout { budget }) (int budget)
  | _ -> None

(* {2 Writing} *)

let write_header oc ~fingerprint ~cells =
  Printf.fprintf oc "%s %s %s %d\n" magic version fingerprint cells;
  flush oc

let append oc ~index (outcome : Runner.outcome) =
  let payload =
    String.concat "\t" (List.map String.escaped (encode_outcome outcome))
  in
  Printf.fprintf oc "c\t%d\t%s\t%s\n" index (checksum payload) payload;
  flush oc

(* {2 Loading} *)

let parse_record ~cells ~seen line =
  match String.split_on_char '\t' line with
  | "c" :: index :: sum :: fields when fields <> [] -> (
    let payload = String.concat "\t" fields in
    match int_of_string_opt index with
    | None -> Error "unparseable cell index"
    | Some i when i < 0 || i >= cells ->
      Error (Printf.sprintf "cell index %d outside grid of %d" i cells)
    | Some i when seen.(i) -> Error (Printf.sprintf "duplicate cell %d" i)
    | Some i ->
      if not (String.equal sum (checksum payload)) then
        Error (Printf.sprintf "checksum mismatch on cell %d" i)
      else
        let unescaped =
          List.map
            (fun f ->
              match Scanf.unescaped f with
              | s -> Some s
              | exception Scanf.Scan_failure _ -> None)
            fields
        in
        if List.exists Option.is_none unescaped then
          Error (Printf.sprintf "unescapable field on cell %d" i)
        else begin
          match decode_outcome (List.filter_map Fun.id unescaped) with
          | Some outcome ->
            seen.(i) <- true;
            Ok (i, outcome)
          | None -> Error (Printf.sprintf "undecodable record for cell %d" i)
        end)
  | _ -> Error "unparseable record line"

let load ~path ~fingerprint ~cells =
  match open_in path with
  | exception Sys_error _ -> ([], None)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file ->
          ([], Some (Printf.sprintf "checkpoint %s: empty file; starting \
                                     from scratch" path))
        | header -> (
          match String.split_on_char ' ' header with
          | [ m; v; fp; n ]
            when String.equal m magic && String.equal v version
                 && String.equal fp fingerprint
                 && int_of_string_opt n = Some cells -> (
            let seen = Array.make cells false in
            let acc = ref [] in
            let warning = ref None in
            (try
               let lineno = ref 1 in
               let rec loop () =
                 let line = input_line ic in
                 incr lineno;
                 match parse_record ~cells ~seen line with
                 | Ok entry ->
                   acc := entry :: !acc;
                   loop ()
                 | Error why ->
                   warning :=
                     Some
                       (Printf.sprintf
                          "checkpoint %s: line %d: %s; keeping %d valid \
                           record(s), re-running the rest"
                          path !lineno why (List.length !acc))
               in
               loop ()
             with End_of_file -> ());
            match !warning with
            | Some _ as w -> (List.rev !acc, w)
            | None -> (List.rev !acc, None))
          | [ m; v; fp; _ ]
            when String.equal m magic && String.equal v version
                 && not (String.equal fp fingerprint) ->
            ( [],
              Some
                (Printf.sprintf
                   "checkpoint %s: grid fingerprint mismatch (file %s, grid \
                    %s); starting from scratch"
                   path fp fingerprint) )
          | _ ->
            ( [],
              Some
                (Printf.sprintf
                   "checkpoint %s: unrecognized header; starting from scratch"
                   path) )))
