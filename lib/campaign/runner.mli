(** One campaign cell, executed to a recorded outcome.

    [run] never lets an exception escape: whatever the cell body raises
    is caught and recorded as [Crashed] (with its backtrace), and a cell
    that exceeds its step budget is recorded as [Timeout] — the sweep
    continues either way.  The budget counts transaction-program
    generations, a simulated-time notion, so the cut point is the same
    on every replay (no wall-clock watchdog).

    A cell's outcome is a pure function of the cell value: the workload
    stream draws from the cell's derived seed, every fault-plane stream
    from {!Grid.sub_seed}, and the runner itself touches no clock and no
    global RNG.  That purity is what lets the orchestrator run cells on
    any domain in any order and still produce byte-identical results. *)

type degradation = {
  restarts : int;
  recovery_lost : int;
  ambiguous : int;
  lost_suffix : int;
  failovers : int;
  coord_ambiguous : int;
  crashed_clients : int;
  indeterminate : int;
}
(** The checker's degradation counters, flattened for aggregation. *)

type completed = {
  verdict : Leopard.Checker.verdict;
  degradation_line : string;
  bugs : int;
  commits : int;
  aborts : int;
  deg : degradation;
  p50_ns : float;
  p99_ns : float;
  sim_ns : int;
}

type outcome =
  | Completed of completed
  | Crashed of { exn_text : string; backtrace : string }
  | Timeout of { budget : int }

type result = { cell : Grid.cell; outcome : outcome }

val default_budget : txns:int -> int
(** [(64 * txns) + 4096] program generations — generous for any honest
    cell, deterministic for a wedged one. *)

val run : ?step_budget:int -> Grid.cell -> result
(** Execute and verify one cell.  Chaos cells verify online (crashed
    clients must release the pipeline watermark); every other plane runs
    offline through {!Leopard_harness.Verify.offline}. *)

type kind = K_verified | K_violation | K_inconclusive | K_crashed | K_timeout

val kind_of : outcome -> kind
val kind_to_string : kind -> string

val expected : Grid.expect -> outcome -> bool
(** The expectation matrix: [Pass] admits verified/inconclusive, [Fail]
    demands conviction, [Any] admits any completed verdict, [Crash] and
    [Stall] demand the matching self-test outcome. *)

val is_expected : result -> bool
