(** The campaign orchestrator: expand a grid, sweep it across a domain
    pool with crash isolation and per-cell step budgets, checkpoint
    completed cells, aggregate a deterministic results DB, and shrink
    every unexpected cell into a replaying reproducer.

    Serial ([jobs = 1]) and parallel sweeps of the same grid produce
    byte-identical [json]; an interrupted sweep ([limit]) resumed
    against its checkpoint re-runs only the incomplete cells and still
    produces the same bytes. *)

type opts = {
  jobs : int;  (** worker domains; 0 = [Domain.recommended_domain_count] *)
  step_budget : int option;  (** per-cell override; [None] = auto *)
  checkpoint : string option;  (** checkpoint file path *)
  limit : int option;
      (** run at most this many incomplete cells then stop — the
          interruption hook the resume tests (and [--max-cells]) use *)
  shrink : bool;  (** shrink unexpected cells into reproducers *)
  max_shrink_attempts : int;
  log : string -> unit;  (** one-line progress/warning sink *)
}

val default_opts : opts
(** [jobs = 1], auto budget, no checkpoint, no limit, shrinking on (48
    attempts), silent log. *)

type repro = { result : Runner.result; bundle : Shrink.bundle }

type outcome = {
  results : Runner.result array;
      (** completed cells in index order; all cells iff [complete] *)
  complete : bool;
  fresh : int;  (** cells executed this sweep *)
  resumed : int;  (** cells restored from the checkpoint *)
  json : string option;  (** the results DB; [Some] iff [complete] *)
  repros : repro list;
  checkpoint_warning : string option;
      (** set when a damaged checkpoint degraded to a (partial) fresh
          start *)
}

val run : ?opts:opts -> Grid.t -> outcome
