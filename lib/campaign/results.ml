(* The campaign results DB: one deterministic JSON document.

   Everything here is derived from the grid and the index-ordered result
   array — never from completion order, wall time, or the number of
   worker domains — so a serial sweep and a parallel sweep of the same
   grid emit byte-identical documents, and a resumed sweep emits the
   same bytes as an uninterrupted one (checkpoint floats round-trip by
   bit pattern).

   Aggregation per cell class: the verdict mix, the distribution
   (sum/max) of every degradation counter, and a latency profile (the
   median of the cells' p50s and the worst p99).  Latencies are
   simulated nanoseconds: they characterize what the injected fault
   planes do to transaction intervals and are exactly reproducible. *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fl f =
  (* %.17g is lossless for doubles and deterministic; trailing-digit
     noise does not matter, byte-stability does. *)
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ "."

let unexpected results =
  Array.to_list results
  |> List.filter (fun r -> not (Runner.is_expected r))

type counts = {
  mutable verified : int;
  mutable violation : int;
  mutable inconclusive : int;
  mutable crashed : int;
  mutable timeout : int;
  mutable bad : int;  (** unexpected under the class's expectation *)
}

let count_of results =
  let c =
    {
      verified = 0;
      violation = 0;
      inconclusive = 0;
      crashed = 0;
      timeout = 0;
      bad = 0;
    }
  in
  List.iter
    (fun (r : Runner.result) ->
      (match Runner.kind_of r.Runner.outcome with
      | Runner.K_verified -> c.verified <- c.verified + 1
      | Runner.K_violation -> c.violation <- c.violation + 1
      | Runner.K_inconclusive -> c.inconclusive <- c.inconclusive + 1
      | Runner.K_crashed -> c.crashed <- c.crashed + 1
      | Runner.K_timeout -> c.timeout <- c.timeout + 1);
      if not (Runner.is_expected r) then c.bad <- c.bad + 1)
    results;
  c

let counts_json c =
  Printf.sprintf
    "{\"verified\":%d,\"violation\":%d,\"inconclusive\":%d,\"crashed\":%d,\
     \"timeout\":%d}"
    c.verified c.violation c.inconclusive c.crashed c.timeout

(* sum/max distribution of one degradation counter over a class *)
let dist name get completed =
  let sum = List.fold_left (fun a c -> a + get c) 0 completed in
  let mx = List.fold_left (fun a c -> max a (get c)) 0 completed in
  Printf.sprintf "\"%s\":{\"sum\":%d,\"max\":%d}" name sum mx

let class_json (clazz : Grid.clazz) (results : Runner.result list) =
  let c = count_of results in
  let completed =
    List.filter_map
      (fun (r : Runner.result) ->
        match r.Runner.outcome with
        | Runner.Completed comp -> Some comp
        | Runner.Crashed _ | Runner.Timeout _ -> None)
      results
  in
  let degs = List.map (fun (x : Runner.completed) -> x.Runner.deg) completed in
  let lat =
    match completed with
    | [] -> "null"
    | _ ->
      let p50s = List.map (fun (x : Runner.completed) -> x.Runner.p50_ns) completed in
      let p99s = List.map (fun (x : Runner.completed) -> x.Runner.p99_ns) completed in
      Printf.sprintf "{\"p50_ns\":%s,\"p99_ns\":%s}"
        (fl (Leopard_util.Stats.percentile p50s 50.0))
        (fl (List.fold_left Float.max 0.0 p99s))
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"workload\":\"%s\",\"expect\":\"%s\",\"cells\":%d,\
     \"unexpected\":%d,\"verdicts\":%s,\"degradation\":{%s},\"latency\":%s}"
    (esc clazz.Grid.cname) (esc clazz.Grid.workload)
    (Grid.expect_to_string clazz.Grid.expect)
    (List.length results) c.bad (counts_json c)
    (String.concat ","
       [
         dist "restarts" (fun (d : Runner.degradation) -> d.Runner.restarts) degs;
         dist "recovery_lost_records"
           (fun (d : Runner.degradation) -> d.Runner.recovery_lost)
           degs;
         dist "ambiguous_commits"
           (fun (d : Runner.degradation) -> d.Runner.ambiguous)
           degs;
         dist "lost_suffix_commits"
           (fun (d : Runner.degradation) -> d.Runner.lost_suffix)
           degs;
         dist "failovers" (fun (d : Runner.degradation) -> d.Runner.failovers) degs;
         dist "coord_ambiguous_commits"
           (fun (d : Runner.degradation) -> d.Runner.coord_ambiguous)
           degs;
         dist "crashed_clients"
           (fun (d : Runner.degradation) -> d.Runner.crashed_clients)
           degs;
         dist "indeterminate_txns"
           (fun (d : Runner.degradation) -> d.Runner.indeterminate)
           degs;
       ])
    lat

let result_json (r : Runner.result) =
  let cell = r.Runner.cell in
  let common =
    Printf.sprintf
      "\"index\":%d,\"class\":\"%s\",\"seed\":%d,\"outcome\":\"%s\",\
       \"expected\":%b"
      cell.Grid.index
      (esc cell.Grid.clazz.Grid.cname)
      cell.Grid.seed
      (Runner.kind_to_string (Runner.kind_of r.Runner.outcome))
      (Runner.is_expected r)
  in
  let rest =
    match r.Runner.outcome with
    | Runner.Completed c ->
      Printf.sprintf
        ",\"bugs\":%d,\"commits\":%d,\"aborts\":%d,\"degradation\":\"%s\",\
         \"p50_ns\":%s,\"p99_ns\":%s,\"sim_ns\":%d"
        c.Runner.bugs c.Runner.commits c.Runner.aborts
        (esc c.Runner.degradation_line)
        (fl c.Runner.p50_ns) (fl c.Runner.p99_ns) c.Runner.sim_ns
    | Runner.Crashed { exn_text; backtrace = _ } ->
      Printf.sprintf ",\"exn\":\"%s\"" (esc exn_text)
    | Runner.Timeout { budget } -> Printf.sprintf ",\"budget\":%d" budget
  in
  Printf.sprintf "{%s%s,\"cli\":\"%s\"}" common rest
    (esc (Grid.cli_line cell))

let to_json ~(grid : Grid.t) (results : Runner.result array) =
  let by_class clazz =
    Array.to_list results
    |> List.filter (fun (r : Runner.result) ->
           String.equal r.Runner.cell.Grid.clazz.Grid.cname clazz.Grid.cname)
  in
  let b = Buffer.create 4096 in
  let all = count_of (Array.to_list results) in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"campaign_seed\": %d,\n  \"fingerprint\": \"%s\",\n  \
        \"seeds_per_class\": %d,\n  \"cells\": %d,\n  \"unexpected\": %d,\n"
       grid.Grid.campaign_seed (Grid.fingerprint grid)
       grid.Grid.seeds_per_class (Array.length results) all.bad);
  Buffer.add_string b
    (Printf.sprintf "  \"verdicts\": %s,\n" (counts_json all));
  Buffer.add_string b "  \"classes\": [\n";
  List.iteri
    (fun i clazz ->
      Buffer.add_string b "    ";
      Buffer.add_string b (class_json clazz (by_class clazz));
      if i < List.length grid.Grid.classes - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    grid.Grid.classes;
  Buffer.add_string b "  ],\n  \"results\": [\n";
  Array.iteri
    (fun i r ->
      Buffer.add_string b "    ";
      Buffer.add_string b (result_json r);
      if i < Array.length results - 1 then Buffer.add_string b ",";
      Buffer.add_string b "\n")
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
