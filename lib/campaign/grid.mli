(** Declarative campaign grids — classes x seeds expanded into cells.

    A campaign is a grid: a list of {e cell classes} (a workload plus one
    fault-plane configuration plus an expected verdict) crossed with a
    range of per-cell seeds.  [cells] expands the grid into a flat array
    of cells; each cell's RNG seed is derived positionally from the
    campaign seed with {!Leopard_util.Rng.derive}, so any cell can be
    reproduced standalone from [(campaign_seed, index)] alone — the
    checker report header and the results DB cite both, and {!cli_line}
    renders the exact [leopard] invocation that replays the cell outside
    the campaign machinery.

    Everything here is pure data: no RNG state, no clock, no I/O.  The
    same grid value expands to the same cell array on every call, which
    is what makes serial and parallel sweeps byte-identical. *)

type plane =
  | Baseline  (** no fault plane: the honest single-node engine *)
  | Chaos of { crash : float; drop : float; dup : float; delay : float }
      (** collection-path faults; verified online so crashed clients
          release the pipeline watermark *)
  | Recovery of {
      crash_at : int list;
      torn : float;
      lost_fsync : float;
      dup_replay : float;
    }  (** server crash/recovery through a faulty WAL *)
  | Net of { drop : float; dup : float; reset : float; delay : float }
      (** the client wire plane *)
  | Repl of {
      followers : int;
      sync : bool;
      drop : float;
      dup : float;
      hop_ns : int;
      failover_at : int list;
    }  (** primary/follower replication, optionally with failovers *)
  | Shard of {
      shards : int;
      drop : float;
      hop_ns : int;
      coord_crash_at : int list;
    }  (** hash-range shard group with 2PC over faulty links *)
  | Stacked of {
      shards : int;
      per_shard : int;
      hop_ns : int;
      failover_at : (int * int) list;  (** [(instant, shard)] *)
    }  (** every shard a replica set: the composed fault planes *)
  | Engine_fault of Minidb.Fault.t list
      (** planted engine bugs — the cells the checker must convict *)
  | Selftest_crash of int
      (** raise from inside the cell body after N transactions; exists
          to prove campaign crash isolation records [Crashed] without
          aborting the sweep *)
  | Selftest_hang
      (** a cell that never reaches its stop condition; exists to prove
          the per-cell step budget records [Timeout] *)

type expect =
  | Pass  (** honest cell: [Verified] or [Inconclusive], never [Violation] *)
  | Fail  (** planted fault: the checker must convict ([Violation]) *)
  | Any  (** any completed verdict is acceptable (seed-dependent faults) *)
  | Crash  (** self-test: the cell must be recorded [Crashed] *)
  | Stall  (** self-test: the cell must be recorded [Timeout] *)

val expect_to_string : expect -> string
val expect_of_string : string -> expect option

type clazz = {
  cname : string;
  workload : string;  (** a {!Leopard_workload.Catalog} name *)
  level : Minidb.Isolation.level;
  txns : int;
  clients : int;
  max_retries : int;
  plane : plane;
  expect : expect;
}

type t = private {
  campaign_seed : int;
  seeds_per_class : int;  (** cells per class; >= 1 *)
  classes : clazz list;
}

val make : ?campaign_seed:int -> ?seeds_per_class:int -> clazz list -> t
(** Defaults: campaign seed 42, one seed per class.  Raises
    [Invalid_argument] on an empty class list, a non-positive seed
    range, an unknown workload name, or a duplicate class name. *)

type cell = { index : int; seed : int; clazz : clazz }
(** [seed = Rng.derive ~seed:campaign_seed ~index] — the only seed the
    cell's run draws from (fault-plane streams use {!sub_seed}). *)

val cells : t -> cell array
(** Class-major expansion: cell [index = class_position * seeds_per_class
    + seed_position].  Pure; identical on every call. *)

val cell_count : t -> int

val sub_seed : cell -> int -> int
(** [sub_seed cell salt] — the derived seed for one of the cell's
    fault-plane streams (chaos, wire link, WAL damage, ...).  Salts are
    fixed per plane so {!cli_line} and the runner agree byte-for-byte. *)

val scale : txns:int -> clients:int -> clazz -> clazz
(** Override the workload size of a class (used by the shrinker and by
    [--cell-txns]/[--cell-clients]); raises [Invalid_argument] on a
    non-positive size. *)

val presets : (string * clazz) list
(** The named cell classes the [campaign] subcommand accepts: honest
    cells across all six fault planes, planted engine faults the checker
    must convict, and the two self-test cells. *)

val preset_names : string list
val find_preset : string -> clazz option

val describe : clazz -> string
(** Canonical one-line rendering of every parameter of the class — the
    fingerprint input, also shown by [campaign --list]. *)

val fingerprint : t -> string
(** 64-bit FNV-1a over the canonical grid description, rendered as 16
    hex digits.  Checkpoints store it so a resume against a different
    grid is detected instead of mixing results. *)

val cli_line : cell -> string
(** The exact standalone [leopard] invocation reproducing this cell:
    workload, isolation, size, the cell's derived seed and every
    fault-plane flag with its derived stream seed.  Self-test cells have
    no standalone equivalent and render as a comment. *)
