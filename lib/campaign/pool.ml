(* A work-stealing-free domain pool: one shared atomic cursor over the
   item array, each worker fetch-and-adds its next index.

   Results land in a slot array indexed by item position, never by
   completion order — the caller sees the same array whether one domain
   ran everything serially or eight raced; that placement is the whole
   parallel-determinism argument, so it lives in one small module the
   tests can hammer directly.

   [f] is expected not to raise (the campaign runner converts every
   exception into a [Crashed] outcome).  If it does raise anyway, the
   worker captures it and the exception is re-raised on the spawning
   domain after every other worker has been joined — never a silently
   lost domain. *)

let map ~jobs items f =
  let n = Array.length items in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let poison = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f items.(i) with
          (* lint: allow spawn-capture — slot [i] is written by exactly one
             worker (the atomic cursor hands each index out once) and the
             array is read only after every domain is joined; disjoint
             slots plus the join barrier make this race-free by design *)
          | r -> results.(i) <- Some r
          | exception e ->
            (* first exception wins; later ones are dropped *)
            ignore
              (Atomic.compare_and_set poison None
                 (Some (e, Printexc.get_raw_backtrace ())));
            (* park the cursor past the end so every worker drains *)
            ignore (Atomic.exchange next n));
          loop ()
        end
      in
      loop ()
    in
    let spawned = min jobs n - 1 in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get poison with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Pool.map: unfilled slot")
      results
  end
