(* The campaign orchestrator: checkpoint load -> domain-pool sweep ->
   results DB -> shrink the unexpected.

   Determinism contract: the results array is keyed by cell index, every
   cell is a pure function of its cell value, and the JSON is derived
   from the array alone — so the number of worker domains, the order
   cells finish in, and whether the sweep was interrupted and resumed
   are all invisible in the output.

   The checkpoint channel is shared by all workers; appends take a
   mutex.  The file is rewritten from its trusted prefix before the
   sweep starts, which both heals a corrupt tail and keeps the file in
   lockstep with what the resume actually believed. *)

type opts = {
  jobs : int;  (** worker domains; 0 = [Domain.recommended_domain_count] *)
  step_budget : int option;  (** per-cell override; None = auto from txns *)
  checkpoint : string option;
  limit : int option;
      (** run at most this many incomplete cells, then stop (the
          interruption hook the resume tests use) *)
  shrink : bool;
  max_shrink_attempts : int;
  log : string -> unit;
}

let default_opts =
  {
    jobs = 1;
    step_budget = None;
    checkpoint = None;
    limit = None;
    shrink = true;
    max_shrink_attempts = 48;
    log = ignore;
  }

type repro = { result : Runner.result; bundle : Shrink.bundle }

type outcome = {
  results : Runner.result array;
      (** completed cells in index order; all of them iff [complete] *)
  complete : bool;
  fresh : int;  (** cells actually executed this sweep *)
  resumed : int;  (** cells restored from the checkpoint *)
  json : string option;  (** the results DB; [Some] iff [complete] *)
  repros : repro list;  (** shrunk reproducers for unexpected cells *)
  checkpoint_warning : string option;
}

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let run ?(opts = default_opts) (grid : Grid.t) =
  let cells = Grid.cells grid in
  let n = Array.length cells in
  let fingerprint = Grid.fingerprint grid in
  let slots : Runner.result option array = Array.make n None in
  let checkpoint_warning = ref None in
  (match opts.checkpoint with
  | Some path ->
    let entries, warning = Checkpoint.load ~path ~fingerprint ~cells:n in
    checkpoint_warning := warning;
    (match warning with Some msg -> opts.log msg | None -> ());
    List.iter
      (fun (i, outcome) ->
        slots.(i) <- Some { Runner.cell = cells.(i); outcome })
      entries
  | None -> ());
  let resumed = Array.fold_left
      (fun acc s -> if Option.is_some s then acc + 1 else acc) 0 slots
  in
  (* Rewrite the checkpoint from its trusted prefix: heals corrupt tails
     and stamps the header for a fresh file. *)
  let ckpt =
    match opts.checkpoint with
    | None -> None
    | Some path ->
      let oc = open_out path in
      Checkpoint.write_header oc ~fingerprint ~cells:n;
      Array.iteri
        (fun i slot ->
          match slot with
          | Some (r : Runner.result) ->
            Checkpoint.append oc ~index:i r.Runner.outcome
          | None -> ())
        slots;
      Some (oc, Mutex.create ())
  in
  let todo =
    Array.to_list cells
    |> List.filter (fun (c : Grid.cell) -> Option.is_none slots.(c.Grid.index))
  in
  let todo =
    match opts.limit with Some k -> take k todo | None -> todo
  in
  let todo = Array.of_list todo in
  let jobs =
    if opts.jobs <= 0 then Domain.recommended_domain_count () else opts.jobs
  in
  if Array.length todo > 0 then
    opts.log
      (Printf.sprintf
         "campaign %s: %d cell(s) (%d checkpointed, %d to run), %d job(s)"
         fingerprint n resumed (Array.length todo) jobs);
  let executed =
    Pool.map ~jobs todo (fun cell ->
        let r = Runner.run ?step_budget:opts.step_budget cell in
        (match ckpt with
        | Some (oc, mu) ->
          Mutex.protect mu (fun () ->
              Checkpoint.append oc ~index:cell.Grid.index r.Runner.outcome)
        | None -> ());
        r)
  in
  (match ckpt with Some (oc, _) -> close_out oc | None -> ());
  Array.iter
    (fun (r : Runner.result) -> slots.(r.Runner.cell.Grid.index) <- Some r)
    executed;
  let complete = Array.for_all Option.is_some slots in
  let results =
    Array.of_list (List.filter_map Fun.id (Array.to_list slots))
  in
  let json = if complete then Some (Results.to_json ~grid results) else None in
  let repros =
    if not opts.shrink then []
    else begin
      let rerun cell =
        (Runner.run ?step_budget:opts.step_budget cell).Runner.outcome
      in
      List.map
        (fun (r : Runner.result) ->
          opts.log
            (Printf.sprintf
               "shrinking unexpected cell %d (class %s, got %s, expected %s)"
               r.Runner.cell.Grid.index r.Runner.cell.Grid.clazz.Grid.cname
               (Runner.kind_to_string (Runner.kind_of r.Runner.outcome))
               (Grid.expect_to_string r.Runner.cell.Grid.clazz.Grid.expect));
          {
            result = r;
            bundle =
              Shrink.shrink ~max_attempts:opts.max_shrink_attempts ~run:rerun
                r;
          })
        (Results.unexpected results)
    end
  in
  {
    results;
    complete;
    fresh = Array.length executed;
    resumed;
    json;
    repros;
    checkpoint_warning = !checkpoint_warning;
  }
