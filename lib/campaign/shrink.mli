(** Delta-debugging shrinker for unexpected campaign cells.

    When a cell contradicts its class expectation, [shrink] re-runs
    progressively smaller variants — fewer transactions, fewer clients,
    shorter fault schedules — keeping a candidate exactly when it
    reproduces the same outcome kind, and returns the smallest failing
    cell as a {e reproducer bundle}.  Because a cell's outcome is a pure
    function of the cell value, the bundle's promise is strong:
    [replay] re-runs the shrunk cell and checks the verdict and the
    degradation line match byte-for-byte (exception text for crashes,
    budget for timeouts). *)

type bundle = {
  original : Grid.cell;
  shrunk : Grid.cell;
  outcome : Runner.outcome;
      (** outcome of [shrunk]; same kind as the original's *)
  attempts : int;  (** cell executions the descent spent *)
}

val same_signature : Runner.outcome -> Runner.outcome -> bool
(** The byte-level identity a reproducer promises (verdict + degradation
    line / exception text / budget; backtraces excluded). *)

val shrink :
  ?max_attempts:int ->
  run:(Grid.cell -> Runner.outcome) ->
  Runner.result ->
  bundle
(** Greedy monotone descent, at most [max_attempts] (default 48) cell
    executions.  [run] is typically [fun c -> (Runner.run c).outcome]
    with the campaign's step budget. *)

val replay : run:(Grid.cell -> Runner.outcome) -> bundle -> bool
(** Re-run the shrunk cell; true iff the outcome signature matches. *)

val render : bundle -> string
(** The human repro report: what was expected, what happened, the shrink
    trajectory, the class parameters, and the exact CLI line (with the
    cell's derived seed) that replays the failure standalone. *)
