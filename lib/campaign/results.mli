(** The campaign results DB — one deterministic JSON document.

    Derived exclusively from the grid and the index-ordered result
    array: no wall clock, no completion order, no domain count.  Serial
    and parallel sweeps of the same grid therefore emit byte-identical
    documents, and a checkpoint-resumed sweep emits the same bytes as an
    uninterrupted one.

    The document carries a per-class aggregate (verdict mix, sum/max
    distribution of every degradation counter, p50/p99 simulated-latency
    profile) and the full per-cell record list, each cell citing its
    derived seed and the standalone CLI line that replays it. *)

val to_json : grid:Grid.t -> Runner.result array -> string

val unexpected : Runner.result array -> Runner.result list
(** Cells whose outcome contradicts their class expectation, in index
    order — the shrinker's work list. *)
