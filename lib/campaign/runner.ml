(* One campaign cell, run to a recorded outcome — never an escaped
   exception.

   The runner owns the three outcome classes the sweep distinguishes:

   - [Completed]: the run and its verification finished; the record
     carries the verdict, the degradation counters, and the latency
     profile (simulated nanoseconds, so the numbers are identical on
     every replay).
   - [Crashed]: anything raised out of the cell body — a planted
     self-test crash, an [assert] tripping inside a fault plane, a
     config constructor rejecting a preset.  The sweep records the
     exception and its backtrace and moves on; one broken cell must
     never abort a thousand-cell campaign.
   - [Timeout]: the per-cell step budget fired.  The budget counts
     transaction-program generations (the one hook that exists in both
     the offline and the online verification paths), so a cell that
     stops making progress is cut deterministically — the same step on
     every replay, unlike any wall-clock watchdog.

   Everything a cell draws flows from its derived seed (workload stream)
   and Grid.sub_seed (fault-plane streams); the runner itself reads no
   clock and no global RNG, so a cell's outcome is a pure function of
   the cell value. *)

module Run = Leopard_harness.Run

type degradation = {
  restarts : int;
  recovery_lost : int;
  ambiguous : int;
  lost_suffix : int;
  failovers : int;
  coord_ambiguous : int;
  crashed_clients : int;
  indeterminate : int;
}

type completed = {
  verdict : Leopard.Checker.verdict;
  degradation_line : string;  (** {!Leopard.Report_pp.degradation_line} *)
  bugs : int;
  commits : int;
  aborts : int;
  deg : degradation;
  p50_ns : float;  (** median transaction-interval latency, simulated ns *)
  p99_ns : float;
  sim_ns : int;
}

type outcome =
  | Completed of completed
  | Crashed of { exn_text : string; backtrace : string }
  | Timeout of { budget : int }

type result = { cell : Grid.cell; outcome : outcome }

(* Raised by the budget wrapper; private to the runner, so a cell body
   cannot fake a timeout by raising it (it would still be caught here
   first, which is the behaviour we want anyway). *)
exception Step_limit of int

let default_budget ~txns =
  (* Generous: retries, aborts and multi-op programs all consume steps,
     but an honest cell generates a small multiple of [txns] programs.
     Only a cell that stopped converging on its stop condition hits
     this. *)
  (64 * txns) + 4096

(* Count every transaction-program generation against the budget.  The
   spec record is immutable; wrapping [next_txn] is the supported way to
   interpose (specs are freshly built per cell, so the closure's counter
   is cell-private and domain-safe). *)
let with_budget ~budget (spec : Leopard_workload.Spec.t) =
  let steps = ref 0 in
  {
    spec with
    Leopard_workload.Spec.next_txn =
      (fun rng ->
        incr steps;
        if !steps > budget then raise (Step_limit budget);
        spec.Leopard_workload.Spec.next_txn rng);
  }

let with_planted_crash ~after (spec : Leopard_workload.Spec.t) =
  let calls = ref 0 in
  {
    spec with
    Leopard_workload.Spec.next_txn =
      (fun rng ->
        incr calls;
        if !calls = after then failwith "selftest: planted cell crash";
        spec.Leopard_workload.Spec.next_txn rng);
  }

let verifier_profile (clazz : Grid.clazz) =
  let name =
    Printf.sprintf "postgresql/%s"
      (Minidb.Isolation.level_to_string clazz.Grid.level)
  in
  match Leopard.Il_profile.find name with
  | Some il -> il
  | None -> invalid_arg ("Runner: no verifier profile " ^ name)

(* Build the Run.config for a cell.  Every constructor call here mirrors
   what bin/leopard_cli.ml builds for the flags Grid.cli_line renders —
   the pair must stay in lockstep or "reproduce with this line" lies. *)
let config_of_cell ~budget (cell : Grid.cell) =
  let c = cell.Grid.clazz in
  let spec =
    match Leopard_workload.Catalog.find c.Grid.workload with
    | Some s -> s
    | None -> invalid_arg ("Runner: unknown workload " ^ c.Grid.workload)
  in
  let spec =
    match c.Grid.plane with
    | Grid.Selftest_crash after -> with_planted_crash ~after spec
    | _ -> spec
  in
  let spec = with_budget ~budget spec in
  let env = Grid.sub_seed cell 1 in
  let stop =
    match c.Grid.plane with
    (* The hang cell must be stoppable only by the budget. *)
    | Grid.Selftest_hang -> Run.Txn_count max_int
    | _ -> Run.Txn_count c.Grid.txns
  in
  let profile = Minidb.Profile.postgresql in
  let level = c.Grid.level in
  let base ?faults ?chaos ?net ?wal ?crash_at ?wal_faults ?repl ?shard () =
    Run.config ?faults ?chaos ?net ?wal ?crash_at ?wal_faults ?repl ?shard
      ~clients:c.Grid.clients ~seed:cell.Grid.seed
      ~max_retries:c.Grid.max_retries ~spec ~profile ~level ~stop ()
  in
  match c.Grid.plane with
  | Grid.Baseline | Grid.Selftest_hang -> base ()
  | Grid.Selftest_crash _ -> base ()
  | Grid.Chaos { crash; drop; dup; delay } ->
    base
      ~chaos:
        (Leopard_harness.Chaos.config ~seed:env ~crash_prob:crash
           ~drop_prob:drop ~dup_prob:dup ~delay_prob:delay ())
      ()
  | Grid.Recovery { crash_at; torn; lost_fsync; dup_replay } ->
    base ~wal:true ~crash_at
      ~wal_faults:
        (Minidb.Wal.fault_cfg ~seed:env ~torn_tail_prob:torn
           ~lost_fsync_prob:lost_fsync ~dup_replay_prob:dup_replay ())
      ()
  | Grid.Net { drop; dup; reset; delay } ->
    base
      ~net:
        (Run.net_config
           ~fault:
             (Leopard_net.Faulty_link.config ~seed:env ~drop_prob:drop
                ~dup_prob:dup ~reset_prob:reset ~delay_prob:delay ())
           ())
      ()
  | Grid.Repl { followers; sync; drop; dup; hop_ns; failover_at } ->
    let cluster =
      Leopard_replication.Cluster.config ~followers
        ~ack_mode:
          (if sync then Leopard_replication.Cluster.Sync
           else Leopard_replication.Cluster.Async)
        ~hop_ns
        ~link:
          (Leopard_net.Faulty_link.config ~seed:env ~drop_prob:drop
             ~dup_prob:dup ())
        ~seed:env ()
    in
    base ~repl:(Run.repl_config ~failover_at cluster) ()
  | Grid.Shard { shards; drop; hop_ns; coord_crash_at } ->
    let group =
      Leopard_shard.Group.config ~shards ~hop_ns
        ~link:(Leopard_net.Faulty_link.config ~seed:env ~drop_prob:drop ())
        ()
    in
    base ~shard:(Run.shard_config ~coord_crash_at group) ()
  | Grid.Stacked { shards; per_shard; hop_ns; failover_at } ->
    let group = Leopard_shard.Group.config ~shards ~hop_ns () in
    let stack =
      Leopard_compose.Stack.config ~followers:per_shard
        ~seed:(Grid.sub_seed cell 2) ()
    in
    base
      ~shard:
        (Run.shard_config ~stack
           ~shard_failover_at:failover_at group)
      ()
  | Grid.Engine_fault faults ->
    base ~faults:(Minidb.Fault.Set.of_list faults) ()

let degradation_of (d : Leopard.Checker.degradation) =
  {
    restarts = d.Leopard.Checker.restarts;
    recovery_lost = d.Leopard.Checker.recovery_lost_records;
    ambiguous = d.Leopard.Checker.ambiguous_commits;
    lost_suffix = d.Leopard.Checker.lost_suffix_commits;
    failovers = d.Leopard.Checker.failovers;
    coord_ambiguous = d.Leopard.Checker.coord_ambiguous_commits;
    crashed_clients = d.Leopard.Checker.crashed_clients;
    indeterminate = d.Leopard.Checker.indeterminate_txns;
  }

let latencies (outcome : Run.outcome) =
  let durations = ref [] in
  Array.iter
    (List.iter (fun (t : Leopard_trace.Trace.t) ->
         durations :=
           float_of_int (t.Leopard_trace.Trace.ts_aft - t.Leopard_trace.Trace.ts_bef)
           :: !durations))
    outcome.Run.client_traces;
  let ds = !durations in
  (Leopard_util.Stats.percentile ds 50.0, Leopard_util.Stats.percentile ds 99.0)

let completed_of ~(report : Leopard.Checker.report) (outcome : Run.outcome) =
  let p50_ns, p99_ns = latencies outcome in
  Completed
    {
      verdict = Leopard.Checker.verdict report;
      degradation_line =
        Leopard.Report_pp.degradation_line report.Leopard.Checker.degradation;
      bugs = report.Leopard.Checker.bugs_total;
      commits = outcome.Run.commits;
      aborts = outcome.Run.aborts;
      deg = degradation_of report.Leopard.Checker.degradation;
      p50_ns;
      p99_ns;
      sim_ns = outcome.Run.sim_duration_ns;
    }

let run ?step_budget (cell : Grid.cell) =
  let budget =
    match step_budget with
    | Some b -> b
    | None -> default_budget ~txns:cell.Grid.clazz.Grid.txns
  in
  Printexc.record_backtrace true;
  let outcome =
    try
      let config = config_of_cell ~budget cell in
      let il = verifier_profile cell.Grid.clazz in
      match cell.Grid.clazz.Grid.plane with
      | Grid.Chaos _ ->
        (* Chaotic collection loses traces and kills clients; only the
           online monitor feeds those channels (crash marks, lost-trace
           counts) to the checker, so chaos cells verify online exactly
           as the CLI does. *)
        let res = Leopard_harness.Online.run ~il config in
        completed_of ~report:res.Leopard_harness.Online.report
          res.Leopard_harness.Online.outcome
      | _ ->
        let outcome = Run.execute config in
        let v = Leopard_harness.Verify.offline ~il outcome in
        completed_of ~report:v.Leopard_harness.Verify.report outcome
    with
    | Step_limit budget -> Timeout { budget }
    | e ->
      let backtrace = Printexc.get_backtrace () in
      Crashed { exn_text = Printexc.to_string e; backtrace }
  in
  { cell; outcome }

(* {2 Expectation} *)

type kind = K_verified | K_violation | K_inconclusive | K_crashed | K_timeout

let kind_of = function
  | Completed { verdict = Leopard.Checker.Verified; _ } -> K_verified
  | Completed { verdict = Leopard.Checker.Violation; _ } -> K_violation
  | Completed { verdict = Leopard.Checker.Inconclusive _; _ } ->
    K_inconclusive
  | Crashed _ -> K_crashed
  | Timeout _ -> K_timeout

let kind_to_string = function
  | K_verified -> "verified"
  | K_violation -> "violation"
  | K_inconclusive -> "inconclusive"
  | K_crashed -> "crashed"
  | K_timeout -> "timeout"

let expected (expect : Grid.expect) outcome =
  match (expect, kind_of outcome) with
  | Grid.Pass, (K_verified | K_inconclusive) -> true
  | Grid.Pass, (K_violation | K_crashed | K_timeout) -> false
  | Grid.Fail, K_violation -> true
  | Grid.Fail, (K_verified | K_inconclusive | K_crashed | K_timeout) -> false
  | Grid.Any, (K_verified | K_violation | K_inconclusive) -> true
  | Grid.Any, (K_crashed | K_timeout) -> false
  | Grid.Crash, K_crashed -> true
  | Grid.Crash, (K_verified | K_violation | K_inconclusive | K_timeout) ->
    false
  | Grid.Stall, K_timeout -> true
  | Grid.Stall, (K_verified | K_violation | K_inconclusive | K_crashed) ->
    false

let is_expected r = expected r.cell.Grid.clazz.Grid.expect r.outcome
