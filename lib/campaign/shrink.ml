(* Delta-debugging for unexpected cells.

   When a cell's outcome contradicts its class expectation (an honest
   cell convicted, a planted fault missed, a crash, a stall), the raw
   cell is usually far bigger than the bug: hundreds of transactions,
   several schedules of injected faults.  The shrinker greedily descends
   on every axis that is monotone-shrinkable — transaction count,
   client count, and each fault-schedule list — accepting a candidate
   exactly when re-running it reproduces the same outcome *kind* as the
   original.  Kind-stability (not byte-equality) is the ddmin invariant:
   a smaller cell with the same verdict class is the same failure,
   even though its counters differ.

   The final bundle is the reproducer contract: re-running the shrunk
   cell yields the same verdict and the same degradation line
   byte-for-byte, every time, because a cell's outcome is a pure
   function of the cell value.  [replay] checks exactly that. *)

type bundle = {
  original : Grid.cell;
  shrunk : Grid.cell;
  outcome : Runner.outcome;  (** outcome of [shrunk]; same kind as original *)
  attempts : int;  (** cell executions the descent spent *)
}

(* The byte-level identity a reproducer promises: verdict and
   degradation line for completed cells, the exception text for crashes,
   the budget for timeouts.  (Backtraces are excluded: they are stable
   in practice but depend on inlining decisions, which is not a promise
   this module should make.) *)
let verdict_equal a b =
  match (a, b) with
  | Leopard.Checker.Verified, Leopard.Checker.Verified -> true
  | Leopard.Checker.Violation, Leopard.Checker.Violation -> true
  | Leopard.Checker.Inconclusive x, Leopard.Checker.Inconclusive y ->
    String.equal x y
  | Leopard.Checker.Verified, (Leopard.Checker.Violation | Leopard.Checker.Inconclusive _)
  | Leopard.Checker.Violation, (Leopard.Checker.Verified | Leopard.Checker.Inconclusive _)
  | Leopard.Checker.Inconclusive _, (Leopard.Checker.Verified | Leopard.Checker.Violation)
    -> false

let same_signature a b =
  match (a, b) with
  | Runner.Completed x, Runner.Completed y ->
    verdict_equal x.Runner.verdict y.Runner.verdict
    && String.equal x.Runner.degradation_line y.Runner.degradation_line
  | ( Runner.Crashed { exn_text = a; _ },
      Runner.Crashed { exn_text = b; _ } ) ->
    String.equal a b
  | Runner.Timeout { budget = a }, Runner.Timeout { budget = b } -> a = b
  | Runner.Completed _, (Runner.Crashed _ | Runner.Timeout _)
  | Runner.Crashed _, (Runner.Completed _ | Runner.Timeout _)
  | Runner.Timeout _, (Runner.Completed _ | Runner.Crashed _) -> false

let kind_equal a b =
  String.equal (Runner.kind_to_string a) (Runner.kind_to_string b)

let shrink ?(max_attempts = 48) ~run (r : Runner.result) =
  let target = Runner.kind_of r.Runner.outcome in
  let attempts = ref 0 in
  let best = ref r.Runner.cell in
  let best_outcome = ref r.Runner.outcome in
  (* Re-run a candidate; accept (and record) it when the outcome kind
     survives the shrink. *)
  let try_cell (cell : Grid.cell) =
    if !attempts >= max_attempts then false
    else begin
      incr attempts;
      let o = run cell in
      if kind_equal (Runner.kind_of o) target then begin
        best := cell;
        best_outcome := o;
        true
      end
      else false
    end
  in
  let with_clazz clazz = { !best with Grid.clazz } in
  (* Greedy monotone descent on a size axis: halve while the failure
     survives, fall back to smaller bites, stop at 1. *)
  let rec descend ~get ~set =
    let v = get (!best).Grid.clazz in
    if v > 1 && !attempts < max_attempts then begin
      let candidates =
        List.sort_uniq Int.compare
          (List.filter (fun x -> x >= 1 && x < v) [ v / 2; (3 * v) / 4; v - 1 ])
      in
      if
        List.exists
          (fun x -> try_cell (with_clazz (set (!best).Grid.clazz x)))
          candidates
      then descend ~get ~set
    end
  in
  descend
    ~get:(fun c -> c.Grid.txns)
    ~set:(fun c txns -> { c with Grid.txns });
  descend
    ~get:(fun c -> c.Grid.clients)
    ~set:(fun c clients -> { c with Grid.clients });
  (* Remove fault-schedule entries one at a time; each successful
     removal restarts against the shrunk list via [best]. *)
  let shrink_list ~get ~set =
    let rec go kept rest =
      match rest with
      | [] -> ()
      | x :: rest ->
        let candidate = List.rev_append kept rest in
        let clazz = (!best).Grid.clazz in
        if try_cell (with_clazz (set clazz candidate)) then go kept rest
        else go (x :: kept) rest
    in
    go [] (get (!best).Grid.clazz)
  in
  let set_plane c plane = { c with Grid.plane } in
  (match (!best).Grid.clazz.Grid.plane with
  | Grid.Recovery p ->
    shrink_list
      ~get:(fun _ -> p.crash_at)
      ~set:(fun c crash_at ->
        match c.Grid.plane with
        | Grid.Recovery p -> set_plane c (Grid.Recovery { p with crash_at })
        | _ -> c)
  | Grid.Repl p ->
    shrink_list
      ~get:(fun _ -> p.failover_at)
      ~set:(fun c failover_at ->
        match c.Grid.plane with
        | Grid.Repl p -> set_plane c (Grid.Repl { p with failover_at })
        | _ -> c)
  | Grid.Shard p ->
    shrink_list
      ~get:(fun _ -> p.coord_crash_at)
      ~set:(fun c coord_crash_at ->
        match c.Grid.plane with
        | Grid.Shard p -> set_plane c (Grid.Shard { p with coord_crash_at })
        | Grid.Baseline | Grid.Chaos _ | Grid.Recovery _ | Grid.Net _
        | Grid.Repl _ | Grid.Stacked _ | Grid.Engine_fault _
        | Grid.Selftest_crash _ | Grid.Selftest_hang ->
          c)
  | Grid.Stacked p ->
    shrink_list
      ~get:(fun _ -> List.mapi (fun i _ -> i) p.failover_at)
      ~set:(fun c kept ->
        match c.Grid.plane with
        | Grid.Stacked q ->
          set_plane c
            (Grid.Stacked
               {
                 q with
                 failover_at =
                   List.filteri (fun i _ -> List.mem i kept) q.failover_at;
               })
        | _ -> c)
  | Grid.Engine_fault faults when List.length faults > 1 ->
    shrink_list
      ~get:(fun _ -> List.mapi (fun i _ -> i) faults)
      ~set:(fun c kept ->
        match c.Grid.plane with
        | Grid.Engine_fault fs ->
          set_plane c
            (Grid.Engine_fault
               (List.filteri (fun i _ -> List.mem i kept) fs))
        | _ -> c)
  | Grid.Baseline | Grid.Net _ | Grid.Chaos _ | Grid.Engine_fault _
  | Grid.Selftest_crash _ | Grid.Selftest_hang ->
    ());
  {
    original = r.Runner.cell;
    shrunk = !best;
    outcome = !best_outcome;
    attempts = !attempts;
  }

let replay ~run bundle = same_signature bundle.outcome (run bundle.shrunk)

let render bundle =
  let b = Buffer.create 512 in
  let cell = bundle.shrunk in
  let c = cell.Grid.clazz in
  let oc = bundle.original.Grid.clazz in
  Buffer.add_string b
    (Printf.sprintf
       "unexpected cell %d (class %s, derived seed %d): got %s, expected %s\n"
       cell.Grid.index c.Grid.cname cell.Grid.seed
       (Runner.kind_to_string (Runner.kind_of bundle.outcome))
       (Grid.expect_to_string c.Grid.expect));
  Buffer.add_string b
    (Printf.sprintf
       "shrunk    : txns %d -> %d, clients %d -> %d (%d replays)\n"
       oc.Grid.txns c.Grid.txns oc.Grid.clients c.Grid.clients
       bundle.attempts);
  (match bundle.outcome with
  | Runner.Completed comp ->
    Buffer.add_string b
      (Printf.sprintf "verdict   : %s, %d bug(s), %d/%d commit/abort\n"
         (Runner.kind_to_string (Runner.kind_of bundle.outcome))
         comp.Runner.bugs comp.Runner.commits comp.Runner.aborts);
    if comp.Runner.degradation_line <> "" then
      Buffer.add_string b comp.Runner.degradation_line
  | Runner.Crashed { exn_text; backtrace } ->
    Buffer.add_string b (Printf.sprintf "crash     : %s\n" exn_text);
    if backtrace <> "" then Buffer.add_string b backtrace
  | Runner.Timeout { budget } ->
    Buffer.add_string b
      (Printf.sprintf "timeout   : step budget %d exhausted\n" budget));
  Buffer.add_string b
    (Printf.sprintf "class     : %s\n" (Grid.describe c));
  Buffer.add_string b
    (Printf.sprintf "reproduce : %s\n" (Grid.cli_line cell));
  Buffer.contents b
