module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
open Isolation

type abort_reason =
  | Deadlock_victim
  | Fuw_conflict
  | Certifier_conflict of string
  | User_abort
  | Server_crash

let abort_reason_to_string = function
  | Deadlock_victim -> "deadlock"
  | Fuw_conflict -> "first-updater-wins"
  | Certifier_conflict s -> "certifier:" ^ s
  | User_abort -> "user-abort"
  | Server_crash -> "server-crash"

type request =
  | Read of { cells : Cell.t list; locking : bool; predicate : bool }
  | Write of (Cell.t * Trace.value) list
  | Commit
  | Abort

type result =
  | Ok_read of Trace.item list
  | Ok_write
  | Ok_commit
  | Err of abort_reason

type txn_state = Active | Committed_at of int | Aborted

type txn = {
  id : int;
  client : int;
  epoch : int;  (* server epoch the txn was started in *)
  mutable state : txn_state;
  mutable snapshot_ts : int;  (* -1 until taken *)
  mutable start_ts : int;  (* -1 until first operation *)
  mutable writes : (Trace.value * int) Cell.Tbl.t;  (* cell -> value, op *)
  mutable write_order : Cell.t list;  (* reverse order of first writes *)
  mutable read_seen : (Cell.t * int) list;  (* cell, seen writer (OCC) *)
  mutable in_conflict : bool;  (* SSI: some rw points into this txn *)
  mutable out_conflict : bool;  (* SSI: some rw leaves this txn *)
}

type t = {
  sim : Sim.t;
  mech : Isolation.mechanisms;
  faults : Fault.Set.t;
  mutable store : Version_store.t;  (* swapped wholesale on recovery *)
  wal : Wal.t option;
  locks : Lock_manager.t;
  truth : Ground_truth.t;
  txns : (int, txn) Hashtbl.t;
  active : (int, txn) Hashtbl.t;
  pending : (int * Trace.value * int) list Cell.Tbl.t;
      (* cell -> (txn, value, op) of uncommitted writers, newest first *)
  mutable initial : (Cell.t * Trace.value) list;  (* reverse load order *)
  mutable epoch : int;  (* bumped by every crash or failover *)
  next_txn : int ref;
      (* shared with engines promoted from this one: ids stay unique
         across a failover *)
  last_stamp : int ref;  (* shared likewise: stamps stay globally monotone *)
  mutable on_commit : (Wal.record -> unit) option;
      (* replication hook: fed every commit record at the instant it is
         durably appended, before the acknowledgement leaves *)
  mutable commits : int;
  mutable restarts : int;
  mutable aborts_deadlock : int;
  mutable aborts_fuw : int;
  mutable aborts_certifier : int;
  mutable aborts_user : int;
  mutable aborts_crash : int;
  mutable dup_commit_acks : int;
  mutable ops : int;
}

let fault t f = Fault.Set.mem f t.faults

let create ?wal sim ~profile ~level ~faults =
  if not (Profile.supports profile level) then
    invalid_arg
      (Printf.sprintf "Engine.create: profile %s does not support %s"
         profile.Profile.name
         (Isolation.level_to_string level));
  let mech = Profile.mechanisms profile level in
  {
    sim;
    mech;
    faults;
    store = Version_store.create ();
    wal;
    locks =
      Lock_manager.create sim
        ~s_ignores_x:(Fault.Set.mem Fault.Shared_lock_ignores_exclusive faults);
    truth = Ground_truth.create ();
    txns = Hashtbl.create 4096;
    active = Hashtbl.create 64;
    pending = Cell.Tbl.create 256;
    initial = [];
    epoch = 0;
    next_txn = ref 0;
    last_stamp = ref 0;
    on_commit = None;
    commits = 0;
    restarts = 0;
    aborts_deadlock = 0;
    aborts_fuw = 0;
    aborts_certifier = 0;
    aborts_user = 0;
    aborts_crash = 0;
    dup_commit_acks = 0;
    ops = 0;
  }

let mechanisms t = t.mech

(* Unique, strictly monotone timestamps within the current instant. *)
let stamp t =
  let s = max (Sim.now t.sim) (!(t.last_stamp) + 1) in
  t.last_stamp := s;
  s

let load t items =
  t.initial <- List.rev_append items t.initial;
  List.iter (fun (cell, value) -> Version_store.load t.store cell value) items

let begin_txn t ~client =
  let id = !(t.next_txn) in
  t.next_txn := id + 1;
  let txn =
    {
      id;
      client;
      epoch = t.epoch;
      state = Active;
      snapshot_ts = -1;
      start_ts = -1;
      writes = Cell.Tbl.create 8;
      write_order = [];
      read_seen = [];
      in_conflict = false;
      out_conflict = false;
    }
  in
  Hashtbl.replace t.txns id txn;
  Hashtbl.replace t.active id txn;
  txn

let txn_id txn = txn.id
let txn_client txn = txn.client
let txn_alive txn = txn.state = Active

let peek t cell =
  match Version_store.latest t.store cell with
  | Some v -> Some v.Version_store.value
  | None -> None

let ground_truth t = t.truth

let committed t id =
  match Hashtbl.find_opt t.txns id with
  | Some { state = Committed_at _; _ } -> true
  | Some _ | None -> false

let commits t = t.commits

let aborts t =
  t.aborts_deadlock + t.aborts_fuw + t.aborts_certifier + t.aborts_user
  + t.aborts_crash

let aborts_by t = function
  | Deadlock_victim -> t.aborts_deadlock
  | Fuw_conflict -> t.aborts_fuw
  | Certifier_conflict _ -> t.aborts_certifier
  | User_abort -> t.aborts_user
  | Server_crash -> t.aborts_crash

let duplicate_commit_acks t = t.dup_commit_acks
let deadlocks t = Lock_manager.deadlocks t.locks
let ops_executed t = t.ops
let epoch t = t.epoch
let restarts t = t.restarts
let wal_appended t = match t.wal with None -> 0 | Some w -> Wal.appended w
let snapshot_committed t = Version_store.snapshot_committed t.store

(* Simulated server crash + recovery, in place.  Volatile state (active
   transactions, their pending writes, the lock table) evaporates; the
   committed state is rebuilt from the WAL.  Every killed transaction's
   future requests get [Err Server_crash] replies, so clients observe a
   definite abort and may retry in the new epoch. *)
let crash_recover t =
  match t.wal with
  | None -> invalid_arg "Engine.crash_recover: engine created without ?wal"
  | Some wal ->
    (* lint: allow hashtbl-order — marks every active txn aborted and
       bumps a counter; per-txn updates, commutative *)
    Hashtbl.iter
      (fun _ txn ->
        if txn.state = Active then begin
          txn.state <- Aborted;
          t.aborts_crash <- t.aborts_crash + 1
        end)
      t.active;
    Hashtbl.reset t.active;
    Cell.Tbl.reset t.pending;
    Lock_manager.crash_all t.locks;
    t.epoch <- t.epoch + 1;
    t.restarts <- t.restarts + 1;
    let records, damage = Wal.crash wal in
    let store, summary =
      Recovery.replay ~initial:(List.rev t.initial) ~records
        ~fresh_ts:(fun () -> stamp t) ~damage
    in
    t.store <- store;
    summary

let set_commit_hook t hook = t.on_commit <- hook

(* Promote a replica to primary: a fresh engine whose committed store is
   rebuilt from [records] (the survivor prefix of the replication log,
   oldest first) and whose epoch supersedes the old primary's.
   Transaction ids, stamps, the status table, ground truth and the
   initial image are shared with the old engine, so promoted-node
   timestamps stay globally monotone, ids stay unique, and idempotent
   commit acks keep working across the failover.  Counters restart at
   zero (the harness sums per-engine counters across the run).  The
   caller deposes the old engine separately — keeping it alive for a
   window models split-brain. *)
let promote_from old ?wal ~records () =
  (match wal with None -> () | Some w -> Wal.preload w records);
  let t =
    {
      old with
      store = Version_store.create ();
      wal;
      locks =
        Lock_manager.create old.sim
          ~s_ignores_x:
            (Fault.Set.mem Fault.Shared_lock_ignores_exclusive old.faults);
      active = Hashtbl.create 64;
      pending = Cell.Tbl.create 256;
      epoch = old.epoch + 1;
      on_commit = None;
      commits = 0;
      restarts = 0;
      aborts_deadlock = 0;
      aborts_fuw = 0;
      aborts_certifier = 0;
      aborts_user = 0;
      aborts_crash = 0;
      dup_commit_acks = 0;
      ops = 0;
    }
  in
  let store, summary =
    Recovery.replay ~initial:(List.rev old.initial) ~records
      ~fresh_ts:(fun () -> stamp t)
      ~damage:Wal.zero_damage
  in
  t.store <- store;
  (t, summary)

(* Depose a replaced primary: volatile state dies exactly as in a crash
   (active transactions abort, pending writes and locks evaporate) and
   the epoch jumps to the promoted engine's, so every straggler request
   of the old brain gets a definite [Err Server_crash].  No recovery
   happens — the promoted engine carries the surviving state. *)
let depose t ~epoch =
  (* lint: allow hashtbl-order — marks every active txn aborted and
     bumps a counter; per-txn updates, commutative *)
  Hashtbl.iter
    (fun _ txn ->
      if txn.state = Active then begin
        txn.state <- Aborted;
        t.aborts_crash <- t.aborts_crash + 1
      end)
    t.active;
  Hashtbl.reset t.active;
  Cell.Tbl.reset t.pending;
  Lock_manager.crash_all t.locks;
  t.on_commit <- None;
  t.epoch <- max t.epoch epoch

let min_active_start t =
  (* lint: allow hashtbl-order — min-fold; commutative and associative *)
  Hashtbl.fold
    (fun _ txn acc ->
      if txn.start_ts >= 0 then min acc txn.start_ts else acc)
    t.active max_int

(* ------------------------------------------------------------------ *)
(* Pending (uncommitted) write index, for dirty-read faults and
   bookkeeping. *)

let pending_add t cell ~txn ~value ~op =
  let entries =
    Option.value ~default:[] (Cell.Tbl.find_opt t.pending cell)
  in
  let entries = List.filter (fun (id, _, _) -> id <> txn) entries in
  Cell.Tbl.replace t.pending cell ((txn, value, op) :: entries)

(* Remove a transaction's pending entries using its own write list, so the
   sweep is O(writes) rather than O(cells). *)
let pending_remove t txn =
  (* lint: allow hashtbl-order — per-cell in-place filter of an
     independent index entry *)
  Cell.Tbl.iter
    (fun cell _ ->
      match Cell.Tbl.find_opt t.pending cell with
      | None -> ()
      | Some entries ->
        let entries = List.filter (fun (id, _, _) -> id <> txn.id) entries in
        if entries = [] then Cell.Tbl.remove t.pending cell
        else Cell.Tbl.replace t.pending cell entries)
    txn.writes

let pending_other t cell ~self =
  match Cell.Tbl.find_opt t.pending cell with
  | None -> None
  | Some entries ->
    List.find_opt (fun (id, _, _) -> id <> self) entries

(* ------------------------------------------------------------------ *)
(* Abort path *)

let finish_abort t txn reason =
  if txn.state <> Active then ()
  else begin
  (match reason with
  | Deadlock_victim -> t.aborts_deadlock <- t.aborts_deadlock + 1
  | Fuw_conflict -> t.aborts_fuw <- t.aborts_fuw + 1
  | Certifier_conflict _ -> t.aborts_certifier <- t.aborts_certifier + 1
  | User_abort -> t.aborts_user <- t.aborts_user + 1
  | Server_crash -> t.aborts_crash <- t.aborts_crash + 1);
  let ts = stamp t in
  (* Retain aborted values so Fault.Read_aborted_version can surface them.
     lint: allow hashtbl-order — one binding per written cell, each
     recorded under its own cell in the version store *)
  Cell.Tbl.iter
    (fun cell (value, op) ->
      Version_store.record_aborted t.store cell
        {
          Version_store.value;
          writer = txn.id;
          writer_ts = txn.start_ts;
          write_op = op;
          commit_ts = ts;
        })
    txn.writes;
  pending_remove t txn;
  txn.state <- Aborted;
  Hashtbl.remove t.active txn.id;
  Lock_manager.release_all t.locks ~txn:txn.id
  end

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let effective_cr t =
  match t.mech.cr with
  | Some Txn_level when fault t Fault.Stmt_snapshot_under_txn_cr ->
    Some Stmt_level
  | other -> other

let ensure_started t txn =
  if txn.start_ts < 0 then txn.start_ts <- stamp t

let snapshot_for_op t txn =
  ensure_started t txn;
  match effective_cr t with
  | None -> max_int  (* pure locking: read latest committed *)
  | Some Txn_level ->
    if txn.snapshot_ts < 0 then txn.snapshot_ts <- txn.start_ts;
    txn.snapshot_ts
  | Some Stmt_level ->
    let s = stamp t in
    txn.snapshot_ts <- s;
    s

(* The snapshot instant the next operation of [txn] would read at —
   exposed so follower-read routing can serve the same snapshot from a
   replica.  Mutates exactly as the engine's own read path would (starts
   the transaction, pins or advances the snapshot). *)
let op_snapshot t txn = snapshot_for_op t txn

let txn_has_writes txn = Cell.Tbl.length txn.writes > 0

(* ------------------------------------------------------------------ *)
(* Lock acquisition over a row list, CPS style *)

let acquire_rows t (txn : txn) rows mode ~ok ~dead =
  let rec go = function
    | [] -> ok ()
    | row :: rest ->
      Lock_manager.acquire t.locks ~txn:txn.id row mode ~k:(function
        | Lock_manager.Granted ->
          if txn.epoch < t.epoch then
            (* the server crashed while we waited *)
            dead Server_crash
          else if txn.state <> Active then
            (* aborted while waiting (cannot normally happen; guard) *)
            dead Deadlock_victim
          else go rest
        | Lock_manager.Deadlock ->
          if txn.epoch < t.epoch then dead Server_crash
          else dead Deadlock_victim)
  in
  go rows

let dedup_rows cells =
  List.sort_uniq Cell.compare_row_key (List.map Cell.row_key cells)

(* The lock granule: SQLite locks whole tables, everything else rows. *)
let granule t (cell : Cell.t) =
  match t.mech.lock_granularity with
  | Isolation.Row_locks -> Cell.row_key cell
  | Isolation.Table_locks -> (cell.Cell.table, -1)

let dedup_granules t cells =
  List.sort_uniq Cell.compare_row_key (List.map (granule t) cells)

(* ------------------------------------------------------------------ *)
(* SSI bookkeeping *)

let ssi_enabled t = t.mech.sc = Some Ssi && not (fault t Fault.No_ssi)

(* Mark rw(reader -> writer).  Returns [true] if this marking turns an
   already-committed transaction into a pivot — in that case the caller
   (the transaction doing the marking) must abort instead, PostgreSQL's
   retroactive-pivot rule. *)
let mark_rw ~reader ~writer =
  if reader.id = writer.id then false
  else begin
    reader.out_conflict <- true;
    writer.in_conflict <- true;
    let committed_pivot tx =
      (match tx.state with Committed_at _ -> true | Active | Aborted -> false)
      && tx.in_conflict && tx.out_conflict
    in
    committed_pivot reader || committed_pivot writer
  end

(* Readers of a row are pruned once they can no longer be concurrent with
   any active transaction. *)
let prune_readers t (info : Version_store.row_info) =
  if List.length info.readers > 64 then begin
    let horizon = min_active_start t in
    info.readers <-
      List.filter
        (fun (id, _) ->
          match Hashtbl.find_opt t.txns id with
          | Some { state = Active; _ } -> true
          | Some { state = Committed_at c; _ } -> c >= horizon
          | Some { state = Aborted; _ } | None -> false)
        info.readers
  end

(* ------------------------------------------------------------------ *)
(* Read path *)

exception Abort_now of abort_reason

(* CockroachDB-style uncertainty restart: a snapshot read that would skip
   a version committed after the snapshot by a transaction with an older
   timestamp must abort — otherwise the read creates a
   younger-to-older antidependency the MVTO certifier forbids. *)
let mvto_uncertainty_check t txn cell ~snapshot =
  if t.mech.sc = Some Mvto && not (fault t Fault.Mvto_no_check) then
    List.iter
      (fun (v : Version_store.version) ->
        if v.writer_ts <= txn.start_ts && v.writer >= 0 then
          raise (Abort_now (Certifier_conflict "mvto-uncertainty")))
      (Version_store.committed_newer_than t.store cell ~ts:snapshot)

let read_cell_value t txn cell ~snapshot =
  (* Own pending write first (unless faulted away). *)
  let own =
    if fault t Fault.Ignore_own_writes then None
    else
      match Cell.Tbl.find_opt txn.writes cell with
      | Some (v, _) -> Some v
      | None -> None
  in
  match own with
  | Some v -> (v, txn.id, -2 (* own write: no provenance dep *))
  | None ->
    let from_version (v : Version_store.version) =
      (v.value, v.writer, v.write_op)
    in
    let dirty =
      if fault t Fault.Dirty_read then pending_other t cell ~self:txn.id
      else None
    in
    (match dirty with
    | Some (id, v, op) -> (v, id, op)
    | None ->
      let visible = Version_store.visible t.store cell ~ts:snapshot in
      (match visible with
      | None -> (0, -1, -1)  (* absent cell: initial state *)
      | Some v ->
        let v =
          if fault t Fault.Stale_read then
            match
              Version_store.predecessor_of_visible t.store cell ~ts:snapshot
            with
            | Some older -> older
            | None -> v
          else v
        in
        let v =
          if fault t Fault.Read_aborted_version then
            match
              Version_store.latest_aborted_newer_than t.store cell
                ~ts:v.commit_ts
            with
            | Some ab -> ab
            | None -> v
          else v
        in
        from_version v))

let do_read t txn ~op_id ~cells ~locking ~predicate ~k =
  let snapshot = snapshot_for_op t txn in
  let skip_locks = predicate && fault t Fault.Predicate_read_ignores_locks in
  let rows = dedup_granules t cells in
  let lock_mode =
    if skip_locks then None
    else if locking && t.mech.me_locking_reads then Some Lock_manager.X
    else if t.mech.me_reads then Some Lock_manager.S
    else None
  in
  let proceed () =
    let items = ref [] in
    List.iter
      (fun cell ->
        mvto_uncertainty_check t txn cell ~snapshot;
        let value, seen_writer, seen_op = read_cell_value t txn cell ~snapshot in
        items := { Trace.cell; value } :: !items;
        (* Bug-4 fault: also surface a stale version next to an own write. *)
        if
          fault t Fault.Read_two_versions
          && Cell.Tbl.mem txn.writes cell
        then begin
          match Version_store.visible t.store cell ~ts:snapshot with
          | Some old when old.value <> value ->
            items := { Trace.cell; value = old.value } :: !items
          | Some _ | None -> ()
        end;
        (* provenance & read tracking *)
        if seen_op <> -2 then begin
          Ground_truth.record_read t.truth cell ~reader:txn.id ~op:op_id
            ~seen_writer ~seen_op;
          if t.mech.sc = Some Occ_validate then
            txn.read_seen <- (cell, seen_writer) :: txn.read_seen
        end;
        let row = Cell.row_key cell in
        let info = Version_store.row_info t.store row in
        (* MVTO read-timestamp registration *)
        if t.mech.sc = Some Mvto && txn.start_ts > info.max_read_ts then
          info.max_read_ts <- txn.start_ts;
        (* SSI reader registration + read-side rw detection *)
        if ssi_enabled t then begin
          prune_readers t info;
          info.readers <- (txn.id, snapshot) :: info.readers;
          if info.last_commit_ts > snapshot && info.last_writer >= 0 then begin
            match Hashtbl.find_opt t.txns info.last_writer with
            | Some w ->
              if mark_rw ~reader:txn ~writer:w then
                raise (Abort_now (Certifier_conflict "ssi"))
            | None -> ()
          end
        end)
      cells;
    t.ops <- t.ops + 1;
    k (Ok_read (List.rev !items))
  in
  let proceed () =
    try proceed ()
    with Abort_now reason ->
      finish_abort t txn reason;
      k (Err reason)
  in
  match lock_mode with
  | None -> proceed ()
  | Some mode ->
    acquire_rows t txn rows mode ~ok:proceed ~dead:(fun reason ->
        finish_abort t txn reason;
        k (Err reason))

(* ------------------------------------------------------------------ *)
(* Write path *)

let fuw_enabled t = t.mech.fuw && not (fault t Fault.No_fuw)

let fuw_conflict t txn row =
  let info = Version_store.row_info t.store row in
  txn.snapshot_ts >= 0 && info.last_commit_ts > txn.snapshot_ts

let do_write t txn ~op_id ~items ~k =
  ensure_started t txn;
  if fault t Fault.Snapshot_reset_on_write && Cell.Tbl.length txn.writes = 0
  then txn.snapshot_ts <- stamp t;
  if txn.snapshot_ts < 0 then txn.snapshot_ts <- txn.start_ts;
  let rows = dedup_granules t (List.map fst items) in
  (* Bug-1 fault: a granule whose new values all equal the currently
     visible committed values is treated as a no-op and skips locking. *)
  let noop_row row =
    fault t Fault.No_lock_on_noop_update
    && List.for_all
         (fun (cell, value) ->
           granule t cell <> row
           ||
           match Version_store.latest t.store cell with
           | Some v -> v.value = value
           | None -> false)
         items
  in
  let lock_rows =
    if t.mech.me_writes then List.filter (fun r -> not (noop_row r)) rows
    else []
  in
  let data_rows = dedup_rows (List.map fst items) in
  let apply () =
    (* FUW check, after locks are held (row-level regardless of the lock
       granule). *)
    let fuw_hit =
      fuw_enabled t && t.mech.me_writes
      && List.exists (fuw_conflict t txn) data_rows
    in
    if fuw_hit then begin
      finish_abort t txn Fuw_conflict;
      k (Err Fuw_conflict)
    end
    else begin
      (* MVTO write-time check: abort when a younger reader or writer got
         there first. *)
      let mvto_hit =
        t.mech.sc = Some Mvto
        && (not (fault t Fault.Mvto_no_check))
        && List.exists
             (fun row ->
               let info = Version_store.row_info t.store row in
               info.max_read_ts > txn.start_ts
               || info.last_writer_ts > txn.start_ts)
             data_rows
      in
      if mvto_hit then begin
        finish_abort t txn (Certifier_conflict "mvto");
        k (Err (Certifier_conflict "mvto"))
      end
      else begin
        List.iter
          (fun (cell, value) ->
            if not (Cell.Tbl.mem txn.writes cell) then
              txn.write_order <- cell :: txn.write_order;
            Cell.Tbl.replace txn.writes cell (value, op_id);
            pending_add t cell ~txn:txn.id ~value ~op:op_id)
          items;
        if fault t Fault.Early_lock_release then
          List.iter
            (fun row -> Lock_manager.release_row t.locks ~txn:txn.id row)
            lock_rows;
        t.ops <- t.ops + 1;
        k Ok_write
      end
    end
  in
  if lock_rows = [] then apply ()
  else
    acquire_rows t txn lock_rows Lock_manager.X ~ok:apply ~dead:(fun reason ->
        finish_abort t txn reason;
        k (Err reason))

(* ------------------------------------------------------------------ *)
(* Commit path *)

let occ_validate t txn =
  List.for_all
    (fun (cell, seen_writer) ->
      match Version_store.latest t.store cell with
      | None -> seen_writer = -1
      | Some v -> v.writer = seen_writer)
    txn.read_seen

let do_commit t txn ~op_id ~k =
  ensure_started t txn;
  if txn.snapshot_ts < 0 then txn.snapshot_ts <- txn.start_ts;
  let write_cells = List.rev txn.write_order in
  let write_rows = dedup_rows write_cells in
  let fail reason =
    finish_abort t txn reason;
    k (Err reason)
  in
  (* Commit-time FUW for lock-free profiles (Percolator-style). *)
  if
    fuw_enabled t
    && (not t.mech.me_writes)
    && List.exists (fuw_conflict t txn) write_rows
  then fail Fuw_conflict
  else if
    (* MVTO commit-time recheck. *)
    t.mech.sc = Some Mvto
    && (not (fault t Fault.Mvto_no_check))
    && List.exists
         (fun row ->
           let info = Version_store.row_info t.store row in
           info.max_read_ts > txn.start_ts
           || info.last_writer_ts > txn.start_ts)
         write_rows
  then fail (Certifier_conflict "mvto")
  else if
    t.mech.sc = Some Occ_validate
    && not (occ_validate t txn)
  then fail (Certifier_conflict "occ")
  else begin
    (* SSI: mark rw(reader -> me) for registered concurrent readers of the
       rows I am about to install, then apply the pivot rule. *)
    let retroactive = ref false in
    if ssi_enabled t then begin
      List.iter
        (fun row ->
          let info = Version_store.row_info t.store row in
          prune_readers t info;
          List.iter
            (fun (reader_id, _snap) ->
              if reader_id <> txn.id then
                match Hashtbl.find_opt t.txns reader_id with
                | Some reader ->
                  let concurrent =
                    match reader.state with
                    | Active -> true
                    | Committed_at c -> c > txn.start_ts
                    | Aborted -> false
                  in
                  if concurrent && mark_rw ~reader ~writer:txn then
                    retroactive := true
                | None -> ())
            info.readers)
        write_rows
    end;
    if !retroactive then fail (Certifier_conflict "ssi")
    else if ssi_enabled t && txn.in_conflict && txn.out_conflict then
      fail (Certifier_conflict "ssi")
    else begin
      let commit_stamp = stamp t in
      let visible_ts =
        if fault t Fault.Delayed_visibility then commit_stamp + 5_000_000
        else commit_stamp
      in
      (* Partial-commit fault: install only a strict prefix. *)
      let cells_to_install =
        if fault t Fault.Partial_commit && List.length write_cells > 1 then begin
          let n = (List.length write_cells + 1) / 2 in
          List.filteri (fun i _ -> i < n) write_cells
        end
        else write_cells
      in
      let installs =
        List.filter_map
          (fun cell ->
            match Cell.Tbl.find_opt txn.writes cell with
            | None -> None
            | Some (value, wop) ->
              let cts =
                if fault t Fault.Version_order_inversion then
                  (* slot the new version just behind the newest real
                     version, so readers keep seeing the old head *)
                  match Version_store.latest t.store cell with
                  | Some head when head.writer >= 0 ->
                    max 1 (head.commit_ts - 1)
                  | Some _ | None -> visible_ts
                else visible_ts
              in
              Some (cell, value, wop, cts))
          cells_to_install
      in
      List.iter
        (fun (cell, value, wop, cts) ->
          Version_store.install t.store cell
            {
              Version_store.value;
              writer = txn.id;
              writer_ts = txn.start_ts;
              write_op = wop;
              commit_ts = cts;
            };
          Ground_truth.record_cell_install t.truth cell ~txn:txn.id ~op:wop)
        installs;
      (* Durability: one commit record with the installed write set,
         appended before the acknowledgement leaves the server.  The
         replication hook receives the same record; building it draws
         nothing (no stamps, no RNG), so attaching a cluster leaves the
         timestamp stream untouched. *)
      (match (t.wal, t.on_commit) with
      | None, None -> ()
      | wal, hook ->
        let record =
          {
            Wal.txn = txn.id;
            client = txn.client;
            start_ts = txn.start_ts;
            commit_ts = commit_stamp;
            writes =
              List.map
                (fun (cell, value, wop, cts) ->
                  { Wal.cell; value; write_op = wop; commit_ts = cts })
                installs;
          }
        in
        (match wal with None -> () | Some w -> Wal.append w record);
        (match hook with None -> () | Some f -> f record));
      (* Row-level metadata + ground truth, on the real commit stamp. *)
      List.iter
        (fun row ->
          let info = Version_store.row_info t.store row in
          info.last_commit_ts <- commit_stamp;
          info.last_writer <- txn.id;
          info.last_writer_ts <- txn.start_ts;
          let row_op =
            (* op of the last write touching this row *)
            List.fold_left
              (fun acc cell ->
                if Cell.row_key cell = row then
                  match Cell.Tbl.find_opt txn.writes cell with
                  | Some (_, op) -> op
                  | None -> acc
                else acc)
              op_id write_cells
          in
          Ground_truth.record_row_install t.truth row ~txn:txn.id ~op:row_op)
        write_rows;
      pending_remove t txn;
      txn.state <- Committed_at commit_stamp;
      Hashtbl.remove t.active txn.id;
      Lock_manager.release_all t.locks ~txn:txn.id;
      t.commits <- t.commits + 1;
      t.ops <- t.ops + 1;
      k Ok_commit
    end
  end

(* ------------------------------------------------------------------ *)

let rec exec t (txn : txn) ~op_id request ~k =
  match (request, txn.state) with
  | Commit, Committed_at _ ->
    (* Idempotent commit token (the transaction id is the token): the
       commit already applied, so a retried or link-duplicated COMMIT is
       re-acknowledged without re-executing.  The transaction-status
       table — persisted alongside the WAL in a real engine — *is* the
       idempotency table.  Checked before the epoch guard: "your commit
       was applied" remains true across a crash; whether it *survived*
       the crash is the WAL's business, and a lossy recovery surfaces as
       a post-crash read violation, never as a flapping ack. *)
    t.dup_commit_acks <- t.dup_commit_acks + 1;
    k Ok_commit
  | (Read _ | Write _ | Commit | Abort), _ -> exec_once t txn ~op_id request ~k

and exec_once t (txn : txn) ~op_id request ~k =
  if txn.epoch < t.epoch then
    (* the txn belongs to a pre-crash epoch: its server-side state is
       gone.  Every request gets a definite crash error — the reply
       always arrives, so no transaction is left indeterminate. *)
    k (Err Server_crash)
  else if txn.state <> Active then k (Err User_abort)
  else
    match request with
    | Read { cells; locking; predicate } ->
      ensure_started t txn;
      do_read t txn ~op_id ~cells ~locking ~predicate ~k
    | Write items -> do_write t txn ~op_id ~items ~k
    | Commit -> do_commit t txn ~op_id ~k
    | Abort ->
      finish_abort t txn User_abort;
      k (Err User_abort)
