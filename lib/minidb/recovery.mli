(** Crash recovery: rebuild a {!Version_store} from the write-ahead log.

    Replay installs every surviving {!Wal.record} at its {e original}
    per-cell commit stamp, so a fault-free recovery reconstructs the
    committed state byte-for-byte ({!Version_store.snapshot_committed}
    equality, proven in [test_recovery.ml]).  Row metadata is rebuilt
    from the records' transaction-level stamps; the volatile reader-side
    fields ([max_read_ts], [readers]) restart empty, which is sound
    because every post-crash timestamp is strictly newer than any
    pre-crash read.

    A record appearing a second time in the replay list (a
    {!Wal.Dup_replay} victim) is re-applied at a {e fresh} stamp drawn
    from [fresh_ts], pushing the resurrected version to the top of its
    chains — the planted anomaly a post-crash consistent read trips
    over. *)

type summary = {
  replayed : int;  (** log records applied during replay *)
  versions_installed : int;  (** individual cell versions installed *)
  duplicated : int;  (** records re-applied at a fresh stamp *)
  damage : Wal.damage;  (** what the crash cost, per fault *)
}

val replay :
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  records:Wal.record list ->
  fresh_ts:(unit -> int) ->
  damage:Wal.damage ->
  Version_store.t * summary
(** [replay ~initial ~records ~fresh_ts ~damage] rebuilds a store from
    the initially-loaded cells plus [records] in list order.  [records]
    comes straight from {!Wal.crash}; [fresh_ts] supplies recovery-time
    stamps for duplicate re-application. *)
