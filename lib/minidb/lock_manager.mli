(** Row-granularity two-phase locking — the ME mechanism.

    Shared/exclusive locks per [(table, row)] granule with FIFO wait
    queues driven by the simulation clock, re-entrant acquisition and
    S→X upgrades, and waits-for-graph deadlock detection that aborts the
    requester.

    Lock waits are what make operation time intervals stretch and overlap
    in traces, so this module is directly responsible for the β
    phenomenon of Fig. 4. *)

type mode = S | X

type row = int * int
(** [(table, row)] — see {!Leopard_trace.Cell.row_key}. *)

type outcome =
  | Granted  (** the lock is held; the continuation runs at grant time *)
  | Deadlock  (** the request would close a waits-for cycle; not enqueued *)

type t

val create : Sim.t -> s_ignores_x:bool -> t
(** [s_ignores_x] injects {!Fault.Shared_lock_ignores_exclusive}: S
    requests are treated as compatible with held X locks. *)

val acquire : t -> txn:int -> row -> mode -> k:(outcome -> unit) -> unit
(** Request a lock.  [k Granted] is scheduled at the simulated instant the
    lock is granted (immediately if free, else when predecessors release).
    [k Deadlock] is scheduled immediately when the request would deadlock;
    the caller is expected to abort the transaction. *)

val holds : t -> txn:int -> row -> mode option
(** Strongest mode currently held by [txn] on [row]. *)

val holders : t -> row -> (int * mode) list
(** All current holders. *)

val release_all : t -> txn:int -> unit
(** Drop every lock held by [txn] (commit/abort), waking compatible
    waiters in FIFO order. *)

val release_row : t -> txn:int -> row -> unit
(** Drop one lock early ({!Fault.Early_lock_release}). *)

val waiting : t -> int
(** Number of queued requests (diagnostics). *)

val deadlocks : t -> int
(** Total requests denied for deadlock since creation. *)

val crash_all : t -> unit
(** Server crash: wipe all held locks, wait queues and waits-for state.
    Queued waiters are not abandoned — each continuation is scheduled
    with [Deadlock] so the in-flight request still completes; the engine
    translates the outcome to a crash abort for old-epoch transactions.
    The deadlock counter is untouched. *)
