(** Write-ahead log of commit records, with a seeded durability fault
    model.

    The engine appends one record per committed transaction — the full
    installed write set with its per-cell commit stamps — before the
    commit acknowledgement leaves the server.  After a simulated crash,
    {!Recovery} replays the surviving records to rebuild the
    {!Version_store}; with no faults the rebuilt committed state is
    byte-identical to the pre-crash committed state (proven in
    [test_recovery.ml]).

    The fault model corrupts the {e durability} path at crash/replay
    time, planting real post-recovery isolation violations for Leopard
    to find.  It is the third corner of the fault triangle:

    - {!Fault} corrupts live concurrency control (wrong answers while
      the server is up);
    - [Harness.Chaos] corrupts the collection path (the verifier sees
      less than what happened);
    - [Wal] faults corrupt what survives a crash (the server itself
      forgets or resurrects committed work).

    All draws come from a dedicated SplitMix64 stream seeded by
    [fault_cfg.seed]: the same seed replays the same damage, and the
    stream is never shared with the workload's RNG. *)

type write = {
  cell : Leopard_trace.Cell.t;
  value : Leopard_trace.Trace.value;
  write_op : int;  (** op id of the writing statement, for provenance *)
  commit_ts : int;  (** per-cell visibility stamp actually installed *)
}

type record = {
  txn : int;
  client : int;
  start_ts : int;
  commit_ts : int;  (** transaction-level commit stamp *)
  writes : write list;
}

(** The four durability faults.  Each plants a consistent-read anomaly
    in the recovered state (see [expected_mechanism]): a crash cannot
    retroactively create the certainly-overlapping committed intervals
    that ME/FUW violations require, so durability damage surfaces to the
    verifier as reads served from a wrong version chain. *)
type fault =
  | Torn_tail  (** the final record is half-applied: only a strict
                   prefix of its write set survives replay *)
  | Lost_fsync  (** a window of acknowledged tail records never reached
                    disk — a resurrected lost update *)
  | Reordered_flush  (** a record near the tail was flushed after its
                         successors and lost: an interior hole *)
  | Dup_replay  (** recovery re-applies a superseded record on top of
                    the state, resurrecting an overwritten version *)

val fault_to_string : fault -> string
val fault_of_string : string -> fault option
val fault_description : fault -> string

val expected_mechanism : fault -> string
(** The verifier family expected to catch the planted anomaly.  All four
    faults map to ["CR"]: the damage shows up as stale / aborted /
    resurrected reads against the value-matched candidate sets. *)

type fault_cfg = {
  seed : int;
  torn_tail_prob : float;
  lost_fsync_prob : float;
  lost_fsync_window : int;  (** max records lost per fsync window *)
  reordered_flush_prob : float;
  dup_replay_prob : float;
}

val fault_cfg :
  ?seed:int ->
  ?torn_tail_prob:float ->
  ?lost_fsync_prob:float ->
  ?lost_fsync_window:int ->
  ?reordered_flush_prob:float ->
  ?dup_replay_prob:float ->
  unit ->
  fault_cfg
(** All probabilities default to zero, window to 3, seed to 0. *)

val faults_disabled : fault_cfg -> bool
(** True when every probability is zero — the all-zero config is a
    proven no-op. *)

type damage = {
  torn_records : int;  (** records replayed with a truncated write set *)
  lost_records : int;  (** records dropped entirely (fsync window) *)
  reordered_records : int;  (** interior records lost to flush reorder *)
  duplicated_records : int;  (** superseded records re-applied on top *)
  lost_writes : int;  (** individual cell writes that did not survive *)
}

val no_damage : damage -> bool

val zero_damage : damage
(** The all-zero damage record (e.g. for a replication-shipped log
    rebuilt without touching the durability fault model). *)

val damaged_records : damage -> int
(** Total records affected — the count reported to the checker's
    degradation record via [Checker.note_restart]. *)

type t

val create : ?faults:fault_cfg -> unit -> t
val append : t -> record -> unit

val preload : t -> record list -> unit
(** Replace the durable log with [records] (oldest first), e.g. the
    survivor prefix a promoted replica received over replication.
    {!appended} is unchanged: the records were counted when the old
    primary appended them. *)

val appended : t -> int
(** Records appended since creation (monotone across crashes). *)

val size : t -> int
(** Records currently in the durable log. *)

val crash : t -> record list * damage
(** Simulate a crash: draw each fault once from the dedicated stream,
    damage the durable log accordingly, and return the records recovery
    must replay, in replay order.  A [Dup_replay] victim appears twice —
    its second occurrence last, to be re-applied at a fresh stamp.  The
    durable log is reset to the surviving records (without the replay
    duplicate), so a later crash starts from the recovered state. *)
