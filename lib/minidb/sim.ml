type event = { at : int; thunk : unit -> unit }

type t = {
  agenda : event Leopard_util.Min_heap.t;
  mutable clock : int;
}

let compare_event a b = Int.compare a.at b.at

let create () =
  { agenda = Leopard_util.Min_heap.create ~compare:compare_event; clock = 0 }

let now t = t.clock

let schedule t ~at thunk =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %d is before now %d" at t.clock);
  Leopard_util.Min_heap.push t.agenda { at; thunk }

let schedule_after t ~delay thunk =
  schedule t ~at:(t.clock + max 0 delay) thunk

let step t =
  match Leopard_util.Min_heap.pop t.agenda with
  | None -> false
  | Some { at; thunk } ->
    t.clock <- at;
    thunk ();
    true

let run t = while step t do () done
let pending t = Leopard_util.Min_heap.length t.agenda
