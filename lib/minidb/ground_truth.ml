module Cell = Leopard_trace.Cell

type dep_kind = Ww | Wr | Rw

let dep_kind_to_string = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

let dep_kind_rank = function Ww -> 0 | Wr -> 1 | Rw -> 2

type dep = {
  kind : dep_kind;
  from_txn : int;
  to_txn : int;
  from_op : int;
  to_op : int;
  row_only : bool;
}

(* total typed order: kind, then endpoints, then ops — [deps] returns a
   sorted list so the ground truth reads the same on every run *)
let compare_dep a b =
  let c = Int.compare (dep_kind_rank a.kind) (dep_kind_rank b.kind) in
  if c <> 0 then c
  else
    let c = Int.compare a.from_txn b.from_txn in
    if c <> 0 then c
    else
      let c = Int.compare a.to_txn b.to_txn in
      if c <> 0 then c
      else
        let c = Int.compare a.from_op b.from_op in
        if c <> 0 then c
        else
          let c = Int.compare a.to_op b.to_op in
          if c <> 0 then c else Bool.compare a.row_only b.row_only

type install = { itxn : int; iop : int }

type read_record = {
  rcell : Cell.t;
  reader : int;
  rop : int;
  seen_writer : int;
  seen_op : int;
}

type t = {
  cell_chains : install list ref Cell.Tbl.t;  (* newest first *)
  row_chains : (int * int, install list ref) Hashtbl.t;  (* newest first *)
  mutable reads : read_record list;
}

let create () =
  {
    cell_chains = Cell.Tbl.create 4096;
    row_chains = Hashtbl.create 1024;
    reads = [];
  }

let chain_ref tbl_find tbl_add key =
  match tbl_find key with
  | Some r -> r
  | None ->
    let r = ref [] in
    tbl_add key r;
    r

let record_cell_install t cell ~txn ~op =
  let r =
    chain_ref
      (Cell.Tbl.find_opt t.cell_chains)
      (Cell.Tbl.add t.cell_chains) cell
  in
  r := { itxn = txn; iop = op } :: !r

let record_row_install t row ~txn ~op =
  let r =
    chain_ref
      (Hashtbl.find_opt t.row_chains)
      (Hashtbl.replace t.row_chains) row
  in
  r := { itxn = txn; iop = op } :: !r

let record_read t cell ~reader ~op ~seen_writer ~seen_op =
  t.reads <-
    { rcell = cell; reader; rop = op; seen_writer; seen_op } :: t.reads

let deps t ~committed =
  let out = Hashtbl.create 4096 in
  let add ~kind ~from_txn ~to_txn ~from_op ~to_op ~row_only =
    if
      from_txn >= 0 && to_txn >= 0 && from_txn <> to_txn
      && committed from_txn && committed to_txn
    then begin
      let key = (kind, from_txn, to_txn) in
      match Hashtbl.find_opt out key with
      | Some existing ->
        (* A cell-level witness supersedes a row-only one. *)
        if existing.row_only && not row_only then
          Hashtbl.replace out key
            { kind; from_txn; to_txn; from_op; to_op; row_only }
      | None ->
        Hashtbl.replace out key
          { kind; from_txn; to_txn; from_op; to_op; row_only }
    end
  in
  let chain_ww ~row_only chain =
    (* chain is newest-first: successor precedes predecessor. *)
    let rec go = function
      | newer :: older :: rest ->
        add ~kind:Ww ~from_txn:older.itxn ~to_txn:newer.itxn
          ~from_op:older.iop ~to_op:newer.iop ~row_only;
        go (older :: rest)
      | [ _ ] | [] -> ()
    in
    go chain
  in
  (* lint: allow hashtbl-order — each chain feeds the [out] dedup table
     keyed by (kind, from, to); a cell-level witness supersedes a
     row-only one whichever lands first, so visit order is immaterial *)
  Cell.Tbl.iter (fun _cell r -> chain_ww ~row_only:false !r) t.cell_chains;
  (* lint: allow hashtbl-order — same dedup-table argument as above *)
  Hashtbl.iter (fun _row r -> chain_ww ~row_only:true !r) t.row_chains;
  (* Reads: wr provenance and rw to the next committed version. *)
  List.iter
    (fun rr ->
      if committed rr.reader then begin
        add ~kind:Wr ~from_txn:rr.seen_writer ~to_txn:rr.reader
          ~from_op:rr.seen_op ~to_op:rr.rop ~row_only:false;
        match Cell.Tbl.find_opt t.cell_chains rr.rcell with
        | None -> ()
        | Some chain ->
          (* Find the install directly newer than the one observed: walk
             newest-first until we hit the observed writer; the element we
             passed last is the direct successor. *)
          let rec find_successor prev = function
            | [] ->
              (* Observed the initial version (or an uncommitted one):
                 the oldest chain element is the direct successor. *)
              if rr.seen_writer = -1 then prev else None
            | i :: rest ->
              if i.itxn = rr.seen_writer then prev
              else find_successor (Some i) rest
          in
          (match find_successor None !chain with
          | Some succ ->
            add ~kind:Rw ~from_txn:rr.reader ~to_txn:succ.itxn
              ~from_op:rr.rop ~to_op:succ.iop ~row_only:false
          | None -> ())
      end)
    t.reads;
  Hashtbl.fold (fun _ d acc -> d :: acc) out []
  |> List.sort compare_dep
