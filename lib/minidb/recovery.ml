module Cell = Leopard_trace.Cell

type summary = {
  replayed : int;
  versions_installed : int;
  duplicated : int;
  damage : Wal.damage;
}

let replay ~initial ~records ~fresh_ts ~damage =
  let store = Version_store.create () in
  List.iter (fun (cell, value) -> Version_store.load store cell value) initial;
  let seen = Hashtbl.create 256 in
  let replayed = ref 0 in
  let installed = ref 0 in
  let duplicated = ref 0 in
  let apply (r : Wal.record) =
    let dup = Hashtbl.mem seen r.Wal.txn in
    if not dup then Hashtbl.replace seen r.Wal.txn ();
    (* A duplicate re-applies at a fresh recovery stamp: its versions
       land on top of the committed chains instead of at their original
       place, resurrecting whatever the original record wrote. *)
    let txn_commit_ts = if dup then fresh_ts () else r.Wal.commit_ts in
    incr replayed;
    if dup then incr duplicated;
    List.iter
      (fun (w : Wal.write) ->
        let commit_ts = if dup then txn_commit_ts else w.Wal.commit_ts in
        Version_store.install store w.Wal.cell
          {
            Version_store.value = w.Wal.value;
            writer = r.Wal.txn;
            writer_ts = r.Wal.start_ts;
            write_op = w.Wal.write_op;
            commit_ts;
          };
        incr installed;
        let info = Version_store.row_info store (Cell.row_key w.Wal.cell) in
        if txn_commit_ts >= info.Version_store.last_commit_ts then begin
          info.Version_store.last_commit_ts <- txn_commit_ts;
          info.Version_store.last_writer <- r.Wal.txn;
          info.Version_store.last_writer_ts <- r.Wal.start_ts
        end)
      r.Wal.writes
  in
  List.iter apply records;
  ( store,
    {
      replayed = !replayed;
      versions_installed = !installed;
      duplicated = !duplicated;
      damage;
    } )
