type mode = S | X
type row = int * int
type outcome = Granted | Deadlock

type waiter = { wtxn : int; wmode : mode; k : outcome -> unit }

type row_state = {
  mutable held : (int * mode) list;  (* each txn at most once, strongest mode *)
  queue : waiter Queue.t;
}

type t = {
  sim : Sim.t;
  rows : (row, row_state) Hashtbl.t;
  by_txn : (int, row list) Hashtbl.t;
  blocked : (int, row) Hashtbl.t;  (* txn -> row it is queued on *)
  s_ignores_x : bool;
  mutable deadlocks : int;
}

let create sim ~s_ignores_x =
  {
    sim;
    rows = Hashtbl.create 1024;
    by_txn = Hashtbl.create 256;
    blocked = Hashtbl.create 64;
    s_ignores_x;
    deadlocks = 0;
  }

let state t row =
  match Hashtbl.find_opt t.rows row with
  | Some s -> s
  | None ->
    let s = { held = []; queue = Queue.create () } in
    Hashtbl.replace t.rows row s;
    s

let compatible t ~requested ~held =
  match (requested, held) with
  | S, S -> true
  | S, X -> t.s_ignores_x
  | X, (S | X) -> false

let holds t ~txn row =
  match Hashtbl.find_opt t.rows row with
  | None -> None
  | Some s -> List.assoc_opt txn s.held

let holders t row =
  match Hashtbl.find_opt t.rows row with None -> [] | Some s -> s.held

let remember_row t txn row =
  let rows = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
  if not (List.mem row rows) then Hashtbl.replace t.by_txn txn (row :: rows)

(* A request can be granted iff every other holder is compatible and —
   strict FIFO — no one is queued ahead.  Upgrades jump the queue, which
   avoids an S->X upgrade self-blocking behind requests that wait on the
   upgrader itself. *)
let can_grant t s ~txn ~mode ~jump_queue =
  let others_ok =
    List.for_all
      (fun (h, hm) -> h = txn || compatible t ~requested:mode ~held:hm)
      s.held
  in
  others_ok && (jump_queue || Queue.is_empty s.queue)

let add_holder s ~txn ~mode =
  let current = List.assoc_opt txn s.held in
  match (current, mode) with
  | Some X, _ -> ()
  | Some S, S -> ()
  | Some S, X -> s.held <- (txn, X) :: List.remove_assoc txn s.held
  | None, m -> s.held <- (txn, m) :: s.held

(* Transactions blocking a request on row state [s]: incompatible holders
   plus mutually incompatible earlier waiters. *)
let blockers t s ~txn ~mode =
  let held_blockers =
    List.filter_map
      (fun (h, hm) ->
        if h <> txn && not (compatible t ~requested:mode ~held:hm) then Some h
        else None)
      s.held
  in
  let queue_blockers =
    Queue.fold
      (fun acc w ->
        if w.wtxn <> txn
           && (not (compatible t ~requested:mode ~held:w.wmode)
               || not (compatible t ~requested:w.wmode ~held:mode))
        then w.wtxn :: acc
        else acc)
      [] s.queue
  in
  held_blockers @ queue_blockers

let blockers_of_blocked t node =
  match Hashtbl.find_opt t.blocked node with
  | None -> []
  | Some row -> (
    match Hashtbl.find_opt t.rows row with
    | None -> []
    | Some s ->
      let mode =
        Queue.fold
          (fun acc w -> if w.wtxn = node then Some w.wmode else acc)
          None s.queue
      in
      (match mode with
      | None -> []
      | Some m -> blockers t s ~txn:node ~mode:m))

(* Waits-for cycle check: would the new request's edges [txn -> seeds]
   close a cycle back to [txn]?  Follow edges of blocked transactions
   only; active (running) transactions have no outgoing edges. *)
let would_deadlock t ~txn ~seeds =
  let visited = Hashtbl.create 16 in
  let rec dfs node =
    if node = txn then true
    else if Hashtbl.mem visited node then false
    else begin
      Hashtbl.replace visited node ();
      List.exists dfs (blockers_of_blocked t node)
    end
  in
  List.exists dfs seeds

let rec wake t row s =
  match Queue.peek_opt s.queue with
  | None -> ()
  | Some w ->
    if can_grant t s ~txn:w.wtxn ~mode:w.wmode ~jump_queue:true then begin
      ignore (Queue.pop s.queue);
      Hashtbl.remove t.blocked w.wtxn;
      add_holder s ~txn:w.wtxn ~mode:w.wmode;
      remember_row t w.wtxn row;
      Sim.schedule_after t.sim ~delay:0 (fun () -> w.k Granted);
      wake t row s
    end

let acquire t ~txn row mode ~k =
  let s = state t row in
  let already = List.assoc_opt txn s.held in
  let satisfied =
    match (already, mode) with
    | Some X, _ -> true
    | Some S, S -> true
    | Some S, X | None, _ -> false
  in
  if satisfied then Sim.schedule_after t.sim ~delay:0 (fun () -> k Granted)
  else begin
    let upgrade = already = Some S in
    if can_grant t s ~txn ~mode ~jump_queue:upgrade then begin
      add_holder s ~txn ~mode;
      remember_row t txn row;
      Sim.schedule_after t.sim ~delay:0 (fun () -> k Granted)
    end
    else begin
      let seeds = blockers t s ~txn ~mode in
      if would_deadlock t ~txn ~seeds then begin
        t.deadlocks <- t.deadlocks + 1;
        Sim.schedule_after t.sim ~delay:0 (fun () -> k Deadlock)
      end
      else begin
        Queue.push { wtxn = txn; wmode = mode; k } s.queue;
        Hashtbl.replace t.blocked txn row
      end
    end
  end

let release_row t ~txn row =
  match Hashtbl.find_opt t.rows row with
  | None -> ()
  | Some s ->
    if List.mem_assoc txn s.held then begin
      s.held <- List.remove_assoc txn s.held;
      (match Hashtbl.find_opt t.by_txn txn with
      | Some rows ->
        Hashtbl.replace t.by_txn txn (List.filter (fun r -> r <> row) rows)
      | None -> ());
      wake t row s
    end

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some rows ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun row ->
        match Hashtbl.find_opt t.rows row with
        | None -> ()
        | Some s ->
          if List.mem_assoc txn s.held then begin
            s.held <- List.remove_assoc txn s.held;
            wake t row s
          end)
      rows

let waiting t = Hashtbl.length t.blocked

let deadlocks t = t.deadlocks

(* A server crash wipes the lock table.  Every queued waiter's
   continuation still fires (with [Deadlock]) so no client is left
   hanging mid-request; the engine, having already bumped its epoch,
   reports the abort as a server crash rather than a deadlock. *)
let crash_all t =
  (* sorted by waiting txn so the wipe fires continuations in a
     reproducible order, not the lock table's hash order *)
  let waiters =
    Hashtbl.fold
      (fun _ s acc -> Queue.fold (fun acc w -> w :: acc) acc s.queue)
      t.rows []
    |> List.sort (fun a b -> Int.compare a.wtxn b.wtxn)
  in
  Hashtbl.reset t.rows;
  Hashtbl.reset t.by_txn;
  Hashtbl.reset t.blocked;
  List.iter
    (fun w -> Sim.schedule_after t.sim ~delay:0 (fun () -> w.k Deadlock))
    waiters
