(** Multi-version storage — the substrate of the CR mechanism.

    Committed versions are kept per cell, newest first by commit
    timestamp.  Row-level metadata (last committed writer, maximum read
    timestamp, registered readers) supports FUW, MVTO and SSI.  Aborted
    versions are retained in a side list solely so that the
    {!Fault.Read_aborted_version} fault can surface them. *)

type version = {
  value : Leopard_trace.Trace.value;
  writer : int;  (** installing transaction id; [-1] for the initial load *)
  writer_ts : int;  (** installing transaction's start timestamp (MVTO) *)
  write_op : int;  (** op id of the installing write; [-1] initial *)
  commit_ts : int;  (** instant the version became visible *)
}

type row = int * int

type row_info = {
  mutable last_commit_ts : int;  (** commit ts of the row's latest writer *)
  mutable last_writer : int;
  mutable last_writer_ts : int;  (** start ts of the row's latest writer *)
  mutable max_read_ts : int;  (** largest reader start ts (MVTO) *)
  mutable readers : (int * int) list;
      (** (txn, snapshot_ts) of readers, for SSI rw tracking *)
}

type t

val create : unit -> t

val load : t -> Leopard_trace.Cell.t -> Leopard_trace.Trace.value -> unit
(** Initial population: installs a version with [commit_ts = 0] and
    [writer = -1]. *)

val install : t -> Leopard_trace.Cell.t -> version -> unit
(** Insert into the committed chain, keeping commit-timestamp order (the
    {!Fault.Version_order_inversion} and {!Fault.Delayed_visibility}
    faults exploit non-monotonic [commit_ts] values). *)

val visible : t -> Leopard_trace.Cell.t -> ts:int -> version option
(** Newest version with [commit_ts <= ts] — snapshot visibility. *)

val visible_mvto :
  t -> Leopard_trace.Cell.t -> writer_ts_max:int -> version option
(** Newest version whose writer start timestamp is [<= writer_ts_max]. *)

val latest : t -> Leopard_trace.Cell.t -> version option
(** Newest committed version regardless of snapshot. *)

val committed_newer_than :
  t -> Leopard_trace.Cell.t -> ts:int -> version list
(** Committed versions with [commit_ts > ts], newest first — the
    uncertainty window of a CockroachDB-style snapshot read. *)

val predecessor_of_visible :
  t -> Leopard_trace.Cell.t -> ts:int -> version option
(** The version directly older than {!visible} — what {!Fault.Stale_read}
    returns when it exists. *)

val record_aborted : t -> Leopard_trace.Cell.t -> version -> unit

val latest_aborted_newer_than :
  t -> Leopard_trace.Cell.t -> ts:int -> version option
(** Most recent aborted version installed after [ts]
    ({!Fault.Read_aborted_version}). *)

val row_info : t -> row -> row_info
(** Metadata record for a row, created on first use. *)

val cells : t -> int
(** Number of distinct cells with at least one version (diagnostics). *)

val snapshot_committed : t -> (Leopard_trace.Cell.t * version list) list
(** Every non-empty committed chain (newest first), sorted by cell — a
    canonical image of the committed state.  Recovery is byte-identical
    exactly when the pre-crash and post-recovery snapshots are equal;
    aborted side lists and volatile row metadata (readers, max read
    timestamp) are deliberately excluded. *)
