type t =
  | No_lock_on_noop_update
  | Stale_read
  | Predicate_read_ignores_locks
  | Read_two_versions
  | No_fuw
  | No_ssi
  | Dirty_read
  | Stmt_snapshot_under_txn_cr
  | Early_lock_release
  | Snapshot_reset_on_write
  | Mvto_no_check
  | Ignore_own_writes
  | Version_order_inversion
  | Read_aborted_version
  | Partial_commit
  | Delayed_visibility
  | Shared_lock_ignores_exclusive

let all =
  [
    No_lock_on_noop_update;
    Stale_read;
    Predicate_read_ignores_locks;
    Read_two_versions;
    No_fuw;
    No_ssi;
    Dirty_read;
    Stmt_snapshot_under_txn_cr;
    Early_lock_release;
    Snapshot_reset_on_write;
    Mvto_no_check;
    Ignore_own_writes;
    Version_order_inversion;
    Read_aborted_version;
    Partial_commit;
    Delayed_visibility;
    Shared_lock_ignores_exclusive;
  ]

let to_string = function
  | No_lock_on_noop_update -> "no-lock-on-noop-update"
  | Stale_read -> "stale-read"
  | Predicate_read_ignores_locks -> "predicate-read-ignores-locks"
  | Read_two_versions -> "read-two-versions"
  | No_fuw -> "no-fuw"
  | No_ssi -> "no-ssi"
  | Dirty_read -> "dirty-read"
  | Stmt_snapshot_under_txn_cr -> "stmt-snapshot-under-txn-cr"
  | Early_lock_release -> "early-lock-release"
  | Snapshot_reset_on_write -> "snapshot-reset-on-write"
  | Mvto_no_check -> "mvto-no-check"
  | Ignore_own_writes -> "ignore-own-writes"
  | Version_order_inversion -> "version-order-inversion"
  | Read_aborted_version -> "read-aborted-version"
  | Partial_commit -> "partial-commit"
  | Delayed_visibility -> "delayed-visibility"
  | Shared_lock_ignores_exclusive -> "shared-lock-ignores-exclusive"

let of_string s = List.find_opt (fun f -> String.equal (to_string f) s) all

let description = function
  | No_lock_on_noop_update ->
    "updates writing an unchanged value skip their exclusive lock (dirty write)"
  | Stale_read -> "reads return the version preceding the visible one"
  | Predicate_read_ignores_locks ->
    "predicate (range) locking reads neither take nor respect row X locks"
  | Read_two_versions ->
    "a read returns both its own pending write and a stale deleted version"
  | No_fuw -> "first-updater-wins disabled: concurrent updates both commit"
  | No_ssi -> "SSI certifier disabled: write skew admitted under serializable"
  | Dirty_read -> "reads observe other transactions' uncommitted writes"
  | Stmt_snapshot_under_txn_cr ->
    "statement-level snapshots served where transaction-level was promised"
  | Early_lock_release -> "exclusive locks released before commit"
  | Snapshot_reset_on_write ->
    "the transaction snapshot is re-taken at the first write"
  | Mvto_no_check ->
    "timestamp-ordering certifier admits newer-to-older dependencies"
  | Ignore_own_writes -> "reads miss the transaction's own pending writes"
  | Version_order_inversion ->
    "a committed version is installed behind the current latest version"
  | Read_aborted_version -> "reads may observe versions of aborted transactions"
  | Partial_commit -> "commit installs only a prefix of the write set"
  | Delayed_visibility ->
    "commit acknowledges before versions become visible to others"
  | Shared_lock_ignores_exclusive ->
    "shared locks are granted while an exclusive lock is held"

let expected_mechanism = function
  | No_lock_on_noop_update -> "ME"
  | Stale_read -> "CR"
  | Predicate_read_ignores_locks -> "ME"
  | Read_two_versions -> "CR"
  | No_fuw -> "FUW"
  | No_ssi -> "SC"
  | Dirty_read -> "CR"
  | Stmt_snapshot_under_txn_cr -> "CR"
  | Early_lock_release -> "ME"
  | Snapshot_reset_on_write -> "CR"
  | Mvto_no_check -> "SC"
  | Ignore_own_writes -> "CR"
  | Version_order_inversion -> "CR"
  | Read_aborted_version -> "CR"
  | Partial_commit -> "CR"
  | Delayed_visibility -> "CR"
  | Shared_lock_ignores_exclusive -> "ME"

let paper_bug = function
  | No_lock_on_noop_update -> Some "TiDB Bug 1: dirty write"
  | Stale_read -> Some "TiDB Bug 2: inconsistent read"
  | Predicate_read_ignores_locks -> Some "TiDB Bug 3: incompatible write locks"
  | Read_two_versions -> Some "TiDB Bug 4: a query returns two versions"
  | _ -> None

module Set = Set.Make (struct
  type nonrec t = t

  (* lint: allow poly-compare — the fault type is all constant
     constructors, so structural compare is total and stable *)
  let compare = compare
end)
