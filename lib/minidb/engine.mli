(** The transactional engine under test.

    A multi-version engine whose concurrency control is assembled from
    exactly the four mechanisms of the paper's Fig. 1, selected by a
    {!Profile.t} and an {!Isolation.level}:

    - {b ME}: row S/X locks via {!Lock_manager} (2PL, held to txn end);
    - {b CR}: snapshot reads via {!Version_store}, at transaction or
      statement granularity;
    - {b FUW}: first-updater-wins aborts of concurrent second updaters;
    - {b SC}: an SSI pivot certifier, an MVTO timestamp-ordering
      certifier, or OCC commit-time read-set validation.

    The engine runs inside a {!Sim} discrete-event simulation: [exec] is
    called at the simulated instant a request {e arrives} at the server,
    and the continuation fires at the instant the reply leaves — possibly
    much later when the request sat in a lock queue.  Injected
    {!Fault.t}s corrupt specific decision points to plant real isolation
    bugs for Leopard to find.

    The engine also keeps {!Ground_truth} — the exact dependencies that
    occurred — which a black-box checker never sees but the evaluation
    harness uses to score Leopard's deductions. *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace

type t
type txn

type abort_reason =
  | Deadlock_victim
  | Fuw_conflict  (** first updater won; this transaction lost *)
  | Certifier_conflict of string  (** SSI / MVTO / OCC refusal *)
  | User_abort
  | Server_crash
      (** the server crashed during the transaction's epoch: its
          server-side state is gone.  The reply still arrives (the
          outcome is definite, never indeterminate) and the abort is
          retryable in the new epoch. *)

val abort_reason_to_string : abort_reason -> string

type request =
  | Read of { cells : Cell.t list; locking : bool; predicate : bool }
      (** [locking] = [SELECT ... FOR UPDATE]; [predicate] marks access
          through a range/join predicate (the trigger of
          {!Fault.Predicate_read_ignores_locks}). *)
  | Write of (Cell.t * Trace.value) list
  | Commit
  | Abort

type result =
  | Ok_read of Trace.item list
      (** observed items; may contain duplicates or extra versions under
          injected faults *)
  | Ok_write
  | Ok_commit
  | Err of abort_reason
      (** the transaction is dead: its effects are discarded and its locks
          released.  The client should log an abort trace. *)

val create :
  ?wal:Wal.t ->
  Sim.t ->
  profile:Profile.t ->
  level:Isolation.level ->
  faults:Fault.Set.t ->
  t
(** Raises [Invalid_argument] if the profile does not support the level.
    With [?wal], every commit appends its installed write set to the log
    before the acknowledgement leaves, enabling {!crash_recover}. *)

val mechanisms : t -> Isolation.mechanisms

val load : t -> (Cell.t * Trace.value) list -> unit
(** Populate the initial database state (visible since time 0). *)

val begin_txn : t -> client:int -> txn
(** Register a transaction; costs no simulated time.  Its snapshot is
    taken at its first operation, per the CR mechanism. *)

val txn_id : txn -> int
val txn_client : txn -> int

val txn_alive : txn -> bool
(** Still active (not committed, not aborted). *)

val exec : t -> txn -> op_id:int -> request -> k:(result -> unit) -> unit
(** Submit a request at the current simulated instant.  [k] fires exactly
    once, at the simulated completion instant.

    Commit is {e idempotent}: a [Commit] for a transaction that already
    committed is re-acknowledged with [Ok_commit] without re-executing
    (the transaction id acts as the commit token; the status table is
    the idempotency table).  This is what makes wire-level COMMIT
    retries and duplications safe — see {!duplicate_commit_acks}. *)

val duplicate_commit_acks : t -> int
(** How many [Commit] requests were acknowledged idempotently because
    the transaction had already committed (retried/duplicated commit
    tokens). *)

val peek : t -> Cell.t -> Trace.value option
(** Latest committed value of a cell — a white-box oracle for tests
    (e.g. checking YCSB+T's closed-economy invariant after a run). *)

val ground_truth : t -> Ground_truth.t
val committed : t -> int -> bool
(** Whether the given transaction id committed. *)

(** {2 Crash–recovery} *)

val crash_recover : t -> Recovery.summary
(** Simulated instantaneous server crash followed by recovery, in place:
    active transactions die (their pending writes and locks evaporate;
    queued lock waiters are answered, not abandoned), the epoch is
    bumped, and the committed store is rebuilt from the WAL under the
    log's durability fault model.  Post-crash requests of pre-crash
    transactions get [Err Server_crash].  Timestamps stay globally
    monotone across the restart, so a single trace file spanning epochs
    remains checkable.  Raises [Invalid_argument] when the engine was
    created without [?wal]. *)

val epoch : t -> int
(** Current server epoch; 0 until the first crash or failover. *)

(** {2 Replication} *)

val set_commit_hook : t -> (Wal.record -> unit) option -> unit
(** Attach (or detach, with [None]) a replication hook fed every commit
    record at the instant the commit applies, before the acknowledgement
    leaves the server.  Building the record draws no stamps and no
    randomness, so attaching a hook leaves the engine's timestamp stream
    byte-identical. *)

val op_snapshot : t -> txn -> int
(** The snapshot instant the transaction's next read would be served at.
    Mutates exactly as the engine's own read path would (starts the
    transaction, pins or advances the snapshot per the CR granularity),
    so follower-read routing can take the snapshot and then serve the
    read from a replica — or fall back to [exec] — without skew.
    [max_int] for pure-locking profiles (read latest committed). *)

val txn_has_writes : txn -> bool
(** Whether the transaction has buffered any writes (a follower can only
    serve reads of write-free transactions: pending writes live only at
    the primary). *)

val promote_from :
  t -> ?wal:Wal.t -> records:Wal.record list -> unit -> t * Recovery.summary
(** Promote a replica to primary: a fresh engine whose committed store
    is rebuilt from [records] (the survivor prefix of the replication
    log, oldest first, replayed at the original commit stamps) and whose
    epoch is the old primary's plus one.  Transaction ids, stamps, the
    transaction-status table, ground truth and the initial image are
    {e shared} with [old], so timestamps stay globally monotone, ids
    unique, and idempotent commit acks keep working across the failover.
    Per-engine counters ([commits], [aborts], ...) restart at zero — sum
    across engines for run totals.  With [?wal] the new engine logs to
    it; the log is preloaded with [records] first ({!Wal.preload}).
    The old engine is left untouched: call {!depose} on it (immediately,
    or after a window to model split-brain). *)

val depose : t -> epoch:int -> unit
(** Kill a replaced primary's volatile state exactly as a crash would
    (active transactions die, locks evaporate, the commit hook detaches)
    and raise its epoch to [epoch] (the promoted engine's), so every
    straggler request gets a definite [Err Server_crash].  Unlike
    {!crash_recover} nothing is rebuilt and {!restarts} does not tick. *)

val restarts : t -> int
(** Number of crash–recovery cycles so far. *)

val snapshot_committed : t -> (Cell.t * Version_store.version list) list
(** {!Version_store.snapshot_committed} of the live store — the
    canonical committed-state image used to prove recovery is
    byte-identical. *)

(** {2 Statistics} *)

val commits : t -> int
val aborts : t -> int
val aborts_by : t -> abort_reason -> int
val deadlocks : t -> int
val ops_executed : t -> int

val wal_appended : t -> int
(** Commit records appended to the WAL ([0] without one). *)
