module Cell = Leopard_trace.Cell

type version = {
  value : Leopard_trace.Trace.value;
  writer : int;
  writer_ts : int;
  write_op : int;
  commit_ts : int;
}

type row = int * int

type row_info = {
  mutable last_commit_ts : int;
  mutable last_writer : int;
  mutable last_writer_ts : int;
  mutable max_read_ts : int;
  mutable readers : (int * int) list;
}

type cell_state = {
  mutable committed : version list;  (* newest first by commit_ts *)
  mutable aborted : version list;  (* newest first by commit_ts *)
}

type t = {
  cells : cell_state Cell.Tbl.t;
  rows : (row, row_info) Hashtbl.t;
}

let create () = { cells = Cell.Tbl.create 4096; rows = Hashtbl.create 1024 }

let cell_state t cell =
  match Cell.Tbl.find_opt t.cells cell with
  | Some s -> s
  | None ->
    let s = { committed = []; aborted = [] } in
    Cell.Tbl.add t.cells cell s;
    s

let load t cell value =
  let s = cell_state t cell in
  s.committed <-
    { value; writer = -1; writer_ts = -1; write_op = -1; commit_ts = 0 }
    :: s.committed

(* Insert keeping the newest-first commit_ts order; equal stamps keep the
   newer insertion in front. *)
let insert_sorted versions v =
  let rec go = function
    | [] -> [ v ]
    | hd :: _ as rest when v.commit_ts >= hd.commit_ts -> v :: rest
    | hd :: tl -> hd :: go tl
  in
  go versions

let install t cell v =
  let s = cell_state t cell in
  s.committed <- insert_sorted s.committed v

let visible t cell ~ts =
  match Cell.Tbl.find_opt t.cells cell with
  | None -> None
  | Some s -> List.find_opt (fun v -> v.commit_ts <= ts) s.committed

let visible_mvto t cell ~writer_ts_max =
  match Cell.Tbl.find_opt t.cells cell with
  | None -> None
  | Some s -> List.find_opt (fun v -> v.writer_ts <= writer_ts_max) s.committed

let committed_newer_than t cell ~ts =
  match Cell.Tbl.find_opt t.cells cell with
  | None -> []
  | Some s -> List.filter (fun v -> v.commit_ts > ts) s.committed

let latest t cell =
  match Cell.Tbl.find_opt t.cells cell with
  | None | Some { committed = []; _ } -> None
  | Some { committed = v :: _; _ } -> Some v

let predecessor_of_visible t cell ~ts =
  match Cell.Tbl.find_opt t.cells cell with
  | None -> None
  | Some s ->
    let rec go = function
      | v :: next :: _ when v.commit_ts <= ts -> Some next
      | _ :: tl -> go tl
      | [] -> None
    in
    go s.committed

let record_aborted t cell v =
  let s = cell_state t cell in
  s.aborted <- insert_sorted s.aborted v

let latest_aborted_newer_than t cell ~ts =
  match Cell.Tbl.find_opt t.cells cell with
  | None -> None
  | Some s -> List.find_opt (fun v -> v.commit_ts > ts) s.aborted

let row_info t row =
  match Hashtbl.find_opt t.rows row with
  | Some info -> info
  | None ->
    let info =
      {
        last_commit_ts = 0;
        last_writer = -1;
        last_writer_ts = -1;
        max_read_ts = 0;
        readers = [];
      }
    in
    Hashtbl.replace t.rows row info;
    info

let cells t = Cell.Tbl.length t.cells

let snapshot_committed t =
  Cell.Tbl.fold
    (fun cell s acc ->
      match s.committed with [] -> acc | vs -> (cell, vs) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> Cell.compare a b)
