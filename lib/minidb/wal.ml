module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Rng = Leopard_util.Rng

type write = {
  cell : Cell.t;
  value : Trace.value;
  write_op : int;
  commit_ts : int;
}

type record = {
  txn : int;
  client : int;
  start_ts : int;
  commit_ts : int;
  writes : write list;
}

type fault = Torn_tail | Lost_fsync | Reordered_flush | Dup_replay

let fault_to_string = function
  | Torn_tail -> "torn-tail"
  | Lost_fsync -> "lost-fsync"
  | Reordered_flush -> "reordered-flush"
  | Dup_replay -> "dup-replay"

let fault_of_string = function
  | "torn-tail" -> Some Torn_tail
  | "lost-fsync" -> Some Lost_fsync
  | "reordered-flush" -> Some Reordered_flush
  | "dup-replay" -> Some Dup_replay
  | _ -> None

let fault_description = function
  | Torn_tail ->
    "the final log record tears mid-write: recovery replays only a \
     strict prefix of its write set, leaving a committed transaction \
     half-applied"
  | Lost_fsync ->
    "an acknowledged fsync window never reached disk: the newest tail \
     records vanish and their updates are silently lost"
  | Reordered_flush ->
    "a record near the tail was flushed after its successors and lost \
     in the crash: the log has an interior hole"
  | Dup_replay ->
    "recovery replays a superseded record a second time, resurrecting \
     an overwritten version on top of the chain"

(* A crash cannot retroactively overlap two committed trace intervals, so
   durability damage never fabricates the certainly-concurrent pairs that
   ME/FUW violations require; it surfaces as wrong version chains under
   post-crash reads. *)
let expected_mechanism = function
  | Torn_tail | Lost_fsync | Reordered_flush | Dup_replay -> "CR"

type fault_cfg = {
  seed : int;
  torn_tail_prob : float;
  lost_fsync_prob : float;
  lost_fsync_window : int;
  reordered_flush_prob : float;
  dup_replay_prob : float;
}

let fault_cfg ?(seed = 0) ?(torn_tail_prob = 0.) ?(lost_fsync_prob = 0.)
    ?(lost_fsync_window = 3) ?(reordered_flush_prob = 0.)
    ?(dup_replay_prob = 0.) () =
  {
    seed;
    torn_tail_prob;
    lost_fsync_prob;
    lost_fsync_window = max 1 lost_fsync_window;
    reordered_flush_prob;
    dup_replay_prob;
  }

let faults_disabled c =
  c.torn_tail_prob = 0. && c.lost_fsync_prob = 0.
  && c.reordered_flush_prob = 0. && c.dup_replay_prob = 0.

type damage = {
  torn_records : int;
  lost_records : int;
  reordered_records : int;
  duplicated_records : int;
  lost_writes : int;
}

let no_damage d =
  d.torn_records = 0 && d.lost_records = 0 && d.reordered_records = 0
  && d.duplicated_records = 0

let damaged_records d =
  d.torn_records + d.lost_records + d.reordered_records
  + d.duplicated_records

let zero_damage =
  {
    torn_records = 0;
    lost_records = 0;
    reordered_records = 0;
    duplicated_records = 0;
    lost_writes = 0;
  }

type t = {
  cfg : fault_cfg;
  rng : Rng.t;  (* dedicated stream: never shared with the workload *)
  mutable log : record list;  (* newest first *)
  mutable appended : int;
}

let create ?(faults = fault_cfg ()) () =
  { cfg = faults; rng = Rng.create faults.seed; log = []; appended = 0 }

let append t r =
  t.log <- r :: t.log;
  t.appended <- t.appended + 1

(* Install a durable-log image wholesale.  A promoted replica's WAL
   starts from the survivor prefix shipped by replication, not empty —
   but those records were appended (and counted) by the deposed primary,
   so [appended] is deliberately left untouched. *)
let preload t records = t.log <- List.rev records

let appended t = t.appended
let size t = List.length t.log

(* --- fault application, all on [records] in append (oldest-first) order --- *)

(* Torn tail: the last record keeps only a strict prefix of its writes
   (half, rounded down — a single-write record loses everything). *)
let apply_torn records damage =
  match List.rev records with
  | [] -> (records, damage)
  | last :: before ->
    let n = List.length last.writes in
    let keep = n / 2 in
    let torn = { last with writes = List.filteri (fun i _ -> i < keep) last.writes } in
    ( List.rev (torn :: before),
      {
        damage with
        torn_records = damage.torn_records + 1;
        lost_writes = damage.lost_writes + (n - keep);
      } )

(* Lost fsync: drop the newest 1 + int(window) records. *)
let apply_lost rng window records damage =
  let len = List.length records in
  if len = 0 then (records, damage)
  else begin
    let lose = min len (1 + Rng.int rng window) in
    let keep = len - lose in
    let survivors = List.filteri (fun i _ -> i < keep) records in
    let writes_lost =
      List.filteri (fun i _ -> i >= keep) records
      |> List.fold_left (fun acc r -> acc + List.length r.writes) 0
    in
    ( survivors,
      {
        damage with
        lost_records = damage.lost_records + lose;
        lost_writes = damage.lost_writes + writes_lost;
      } )
  end

(* Reordered flush: one interior record in the tail window was flushed
   after its successors and is lost, leaving a hole.  Needs at least two
   records so the hole is genuinely interior (a successor survives). *)
let apply_reorder rng window records damage =
  let len = List.length records in
  if len < 2 then (records, damage)
  else begin
    let lo = max 0 (len - 1 - window) in
    let victim = Rng.int_in rng lo (len - 2) in
    let lost = List.nth records victim in
    ( List.filteri (fun i _ -> i <> victim) records,
      {
        damage with
        reordered_records = damage.reordered_records + 1;
        lost_writes = damage.lost_writes + List.length lost.writes;
      } )
  end

(* Dup replay: pick a record superseded by a later survivor (a later
   record writes one of its cells) and re-apply it after everything else.
   Without supersession the duplicate would be idempotent, so no fault is
   planted in that case. *)
let pick_dup rng records =
  let arr = Array.of_list records in
  let n = Array.length arr in
  let superseded i =
    List.exists
      (fun w ->
        let rec later j =
          j < n
          && (List.exists (fun w' -> Cell.equal w'.cell w.cell) arr.(j).writes
             || later (j + 1))
        in
        later (i + 1))
      arr.(i).writes
  in
  let candidates = ref [] in
  for i = n - 2 downto 0 do
    if superseded i then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | l -> Some (List.nth l (Rng.int rng (List.length l)))

let apply_dup rng records damage =
  match pick_dup rng records with
  | None -> (records, damage)
  | Some i ->
    let victim = List.nth records i in
    ( records @ [ victim ],
      { damage with duplicated_records = damage.duplicated_records + 1 } )

let crash t =
  let cfg = t.cfg in
  let rng = t.rng in
  let records = List.rev t.log in
  (* One draw per fault per crash, in a fixed order, so the stream stays
     aligned across runs regardless of which faults fire. *)
  let roll_torn = Rng.chance rng cfg.torn_tail_prob in
  let roll_lost = Rng.chance rng cfg.lost_fsync_prob in
  let roll_reorder = Rng.chance rng cfg.reordered_flush_prob in
  let roll_dup = Rng.chance rng cfg.dup_replay_prob in
  let records, damage =
    if roll_lost then apply_lost rng cfg.lost_fsync_window records zero_damage
    else (records, zero_damage)
  in
  let records, damage =
    if roll_reorder then apply_reorder rng cfg.lost_fsync_window records damage
    else (records, damage)
  in
  let records, damage =
    if roll_torn then apply_torn records damage else (records, damage)
  in
  let replay, damage =
    if roll_dup then apply_dup rng records damage else (records, damage)
  in
  (* The durable log restarts from the survivors — the replay duplicate
     is a recovery artifact, not a log entry. *)
  t.log <- List.rev records;
  (replay, damage)
