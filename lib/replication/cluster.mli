(** A primary/follower minidb cluster: the replication fault plane.

    The primary's engine reports every durable commit through a commit
    hook ({!on_commit}); the cluster appends it to a replication log and
    ships it to each follower as {!Leopard_net.Wire.Repl_append}
    messages routed through {!Leopard_net.Faulty_link} — so partitions,
    drops, duplication, delay and reordering apply to replication
    traffic exactly as they do to client traffic.  Followers apply
    entries strictly in order and return cumulative
    {!Leopard_net.Wire.Repl_ack}s.

    {b Determinism.}  With no link faults, no hop latency and no
    partition windows, shipping takes a synchronous fast path: zero
    simulation events, zero RNG draws — a replicated run is
    byte-identical to a single-node run on the same seed.  Likewise a
    sync-mode commit already covered by the quorum acknowledges
    synchronously without scheduling a timeout.

    {b Failover.}  {!failover} promotes the most caught-up live follower
    (the {!Repl_fault.Promote_lagging} fault inverts the election),
    truncates the log to the survivor prefix, reports the lost suffix,
    settles stranded commit gates, and rebuilds the remaining followers
    onto the new timeline.  In-flight messages from the deposed timeline
    carry an older generation and are discarded on delivery. *)

type ack_mode =
  | Sync  (** commit acknowledged only once every live follower has it *)
  | Async  (** commit acknowledged immediately; replication catches up *)

val ack_mode_to_string : ack_mode -> string
val ack_mode_of_string : string -> ack_mode option

type partition = {
  follower : int;  (** link to cut; [-1] cuts every follower at once *)
  from_ns : int;
  until_ns : int;  (** half-open window [[from_ns, until_ns)] *)
}

type config = {
  followers : int;
  ack_mode : ack_mode;
  hop_ns : int;  (** one-way replication hop latency *)
  link : Leopard_net.Faulty_link.config;
  partitions : partition list;
  gate_timeout_ns : int;  (** sync commit gives up waiting (ambiguous) *)
  retransmit_ns : int;
  max_retransmits : int;  (** cap so the event agenda always drains *)
  follower_read_prob : float;  (** chance a routable read goes to a replica *)
  staleness_bound_ns : int;
      (** how far behind a {!Repl_fault.Stale_follower_read} replica may
          serve from *)
  faults : Repl_fault.t list;
  seed : int;  (** follower-choice RNG seed *)
}

val config :
  ?followers:int ->
  ?ack_mode:ack_mode ->
  ?hop_ns:int ->
  ?link:Leopard_net.Faulty_link.config ->
  ?partitions:partition list ->
  ?gate_timeout_ns:int ->
  ?retransmit_ns:int ->
  ?max_retransmits:int ->
  ?follower_read_prob:float ->
  ?staleness_bound_ns:int ->
  ?faults:Repl_fault.t list ->
  ?seed:int ->
  unit ->
  config
(** Validating constructor; raises [Invalid_argument] on nonsense
    (no followers, negative windows, probabilities outside [0,1]...). *)

type gate_outcome =
  | Acked  (** replicated to the quorum: the commit is safe to report *)
  | Ack_timeout
      (** gave up waiting: the commit {e happened} on the primary but
          its durability across failover is unknown — ambiguous *)
  | Lost_at_failover
      (** the commit was beyond the survivor prefix when the primary was
          replaced: it is gone from the surviving timeline *)

type promotion = {
  target : int;  (** follower promoted to primary *)
  survived : Minidb.Wal.record list;  (** log prefix the target had applied *)
  lost : Minidb.Wal.record list;  (** truncated suffix, oldest first *)
  target_lag : int;  (** entries the target was missing at election *)
}

type stats = {
  appends_sent : int;
  resends : int;
  appends_delivered : int;
  acks_delivered : int;
  partition_drops : int;
  stale_drops : int;  (** deposed-timeline messages discarded on arrival *)
  gate_timeouts : int;
  follower_reads : int;
  stale_serves : int;  (** follower reads served behind the snapshot *)
  failovers : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  link_reordered : int;
  link_resets : int;
  log_length : int;
  min_acked : int;
}

type t

val create :
  Minidb.Sim.t ->
  config ->
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  t

val cfg : t -> config

val evented : t -> bool
(** Whether shipping goes through simulation events (any link fault, hop
    latency or partition window) rather than the synchronous fast path. *)

val log_length : t -> int

val on_commit : t -> Minidb.Wal.record -> unit
(** The engine commit hook: append to the replication log and ship. *)

val gate_commit : t -> txn:int -> k:(gate_outcome -> unit) -> unit
(** Decide how txn's commit may be reported.  [Async] (and any commit
    already covered by the quorum) settles synchronously with [Acked];
    otherwise [k] fires later — on quorum ack, on timeout, or at
    failover — exactly once. *)

val failover : t -> promotion option
(** Promote a live follower (see module doc); [None] when none remain. *)

val maybe_follower_read :
  t ->
  cells:Leopard_trace.Cell.t list ->
  snapshot:(unit -> int) ->
  Leopard_trace.Trace.item list option
(** Probabilistically route a snapshot read to a live replica.  [snapshot]
    is only forced after the routing roll succeeds.  Serves only when the
    replica's applied horizon covers the snapshot — byte-identical values
    to a primary read — unless {!Repl_fault.Stale_follower_read} is
    planted, which also serves from a horizon up to [staleness_bound_ns]
    behind.  [None] means the caller must read from the primary. *)

val stats : t -> stats
