module Rng = Leopard_util.Rng
module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Sim = Minidb.Sim
module Wal = Minidb.Wal
module Wire = Leopard_net.Wire
module Faulty_link = Leopard_net.Faulty_link

type ack_mode = Sync | Async

let ack_mode_to_string = function Sync -> "sync" | Async -> "async"

let ack_mode_of_string = function
  | "sync" -> Some Sync
  | "async" -> Some Async
  | _ -> None

type partition = { follower : int; from_ns : int; until_ns : int }

type config = {
  followers : int;
  ack_mode : ack_mode;
  hop_ns : int;
  link : Faulty_link.config;
  partitions : partition list;
  gate_timeout_ns : int;
  retransmit_ns : int;
  max_retransmits : int;
  follower_read_prob : float;
  staleness_bound_ns : int;
  faults : Repl_fault.t list;
  seed : int;
}

let config ?(followers = 1) ?(ack_mode = Sync) ?(hop_ns = 0)
    ?(link = Faulty_link.disabled) ?(partitions = [])
    ?(gate_timeout_ns = 2_000_000) ?(retransmit_ns = 500_000)
    ?(max_retransmits = 8) ?(follower_read_prob = 0.0)
    ?(staleness_bound_ns = 1_000_000) ?(faults = []) ?(seed = 1) () =
  if followers < 1 then invalid_arg "Cluster.config: followers must be >= 1";
  if hop_ns < 0 then invalid_arg "Cluster.config: hop_ns must be >= 0";
  if gate_timeout_ns <= 0 then
    invalid_arg "Cluster.config: gate_timeout_ns must be > 0";
  if retransmit_ns <= 0 then
    invalid_arg "Cluster.config: retransmit_ns must be > 0";
  if max_retransmits < 0 then
    invalid_arg "Cluster.config: max_retransmits must be >= 0";
  if follower_read_prob < 0.0 || follower_read_prob > 1.0 then
    invalid_arg "Cluster.config: follower_read_prob must be in [0,1]";
  if staleness_bound_ns < 0 then
    invalid_arg "Cluster.config: staleness_bound_ns must be >= 0";
  List.iter
    (fun p ->
      if p.from_ns < 0 || p.until_ns <= p.from_ns then
        invalid_arg "Cluster.config: partition window must satisfy 0 <= from < until";
      if p.follower < -1 || p.follower >= followers then
        invalid_arg "Cluster.config: partition follower out of range")
    partitions;
  {
    followers;
    ack_mode;
    hop_ns;
    link;
    partitions;
    gate_timeout_ns;
    retransmit_ns;
    max_retransmits;
    follower_read_prob;
    staleness_bound_ns;
    faults;
    seed;
  }

type gate_outcome = Acked | Ack_timeout | Lost_at_failover

type promotion = {
  target : int;
  survived : Wal.record list;
  lost : Wal.record list;
  target_lag : int;
}

(* One replication channel: a follower plus the primary's view of it. *)
type chan = {
  f : Follower.t;
  mutable acked_through : int;  (* highest cumulatively acked index *)
  mutable inflight : bool;  (* depth-1 pipeline: one unacked append *)
  mutable live : bool;  (* false once promoted away *)
}

(* A sync-mode commit waiting for replication.  Gates settle exactly
   once: by quorum ack, by timeout (ambiguous), or at failover. *)
type gate = {
  g_index : int;
  mutable g_settled : bool;
  g_k : gate_outcome -> unit;
}

type stats = {
  appends_sent : int;
  resends : int;
  appends_delivered : int;
  acks_delivered : int;
  partition_drops : int;
  stale_drops : int;
  gate_timeouts : int;
  follower_reads : int;
  stale_serves : int;
  failovers : int;
  link_dropped : int;
  link_duplicated : int;
  link_delayed : int;
  link_reordered : int;
  link_resets : int;
  log_length : int;
  min_acked : int;
}

type t = {
  cfg : config;
  sim : Sim.t;
  initial : (Cell.t * Trace.value) list;
  link : Faulty_link.t;
  rng : Rng.t;
  mutable log : Wal.record array;  (* 1-based via entry_at; [count] used *)
  mutable count : int;
  index_of_txn : (int, int) Hashtbl.t;
  chans : chan array;
  gates : gate Queue.t;
  evented : bool;
  (* Messages from a deposed timeline carry an older generation and are
     discarded on delivery: without this, an in-flight append from the
     old primary could land on a follower already rebuilt onto the
     survivor prefix and resurrect a lost-suffix record. *)
  mutable gen : int;
  mutable n_appends_sent : int;
  mutable n_resends : int;
  mutable n_appends_delivered : int;
  mutable n_acks_delivered : int;
  mutable n_partition_drops : int;
  mutable n_stale_drops : int;
  mutable n_gate_timeouts : int;
  mutable n_follower_reads : int;
  mutable n_stale_serves : int;
  mutable n_failovers : int;
}

let create sim (cfg : config) ~initial =
  let evented =
    (not (Faulty_link.is_disabled cfg.link))
    || cfg.hop_ns > 0 || cfg.partitions <> []
  in
  {
    cfg;
    sim;
    initial;
    link = Faulty_link.create ~sessions:cfg.followers cfg.link;
    rng = Rng.create cfg.seed;
    log = [||];
    count = 0;
    index_of_txn = Hashtbl.create 256;
    chans =
      Array.init cfg.followers (fun id ->
          {
            f = Follower.create ~id ~initial;
            acked_through = 0;
            inflight = false;
            live = true;
          });
    gates = Queue.create ();
    evented;
    gen = 0;
    n_appends_sent = 0;
    n_resends = 0;
    n_appends_delivered = 0;
    n_acks_delivered = 0;
    n_partition_drops = 0;
    n_stale_drops = 0;
    n_gate_timeouts = 0;
    n_follower_reads = 0;
    n_stale_serves = 0;
    n_failovers = 0;
  }

let cfg t = t.cfg
let evented t = t.evented
let log_length t = t.count

let entry_at t i = t.log.(i - 1)

let push t r =
  let cap = Array.length t.log in
  if t.count = cap then begin
    let bigger = Array.make (max 64 (2 * cap)) r in
    Array.blit t.log 0 bigger 0 cap;
    t.log <- bigger
  end;
  t.log.(t.count) <- r;
  t.count <- t.count + 1

let live_chans t = Array.to_list t.chans |> List.filter (fun c -> c.live)

let min_acked t =
  match live_chans t with
  | [] -> t.count  (* nobody left to wait on *)
  | cs -> List.fold_left (fun acc c -> min acc c.acked_through) max_int cs

(* Is the link to [follower] inside an active partition window?
   [follower = -1] in a window means every follower at once — the
   primary itself is isolated. *)
let partitioned t ~follower =
  let now = Sim.now t.sim in
  List.exists
    (fun p ->
      (p.follower = -1 || p.follower = follower)
      && now >= p.from_ns && now < p.until_ns)
    t.cfg.partitions

let settle_gates t =
  let quorum = min_acked t in
  let rec loop () =
    match Queue.peek_opt t.gates with
    | None -> ()
    | Some g when g.g_settled ->
      ignore (Queue.pop t.gates);
      loop ()
    | Some g when g.g_index <= quorum ->
      ignore (Queue.pop t.gates);
      g.g_settled <- true;
      g.g_k Acked;
      loop ()
    | Some _ -> ()
  in
  loop ()

(* Route one message over a follower's link: partition windows drop it
   outright; otherwise the faulty link decides drop/duplicate/delay and
   every surviving copy travels one [hop_ns] plus its extra latency. *)
let transmit t c msg ~deliver =
  if partitioned t ~follower:c.f.Follower.id then
    t.n_partition_drops <- t.n_partition_drops + 1
  else
    match Faulty_link.route t.link ~session:c.f.Follower.id with
    | Faulty_link.Drop | Faulty_link.Reset -> ()
    | Faulty_link.Deliver extras ->
      List.iter
        (fun extra ->
          Sim.schedule_after t.sim ~delay:(t.cfg.hop_ns + extra) (fun () ->
              deliver msg))
        extras

let rec send_append t c ~index ~attempt =
  if attempt = 1 then t.n_appends_sent <- t.n_appends_sent + 1
  else t.n_resends <- t.n_resends + 1;
  let gen = t.gen in
  let msg =
    Wire.Repl_append
      { follower = c.f.Follower.id; index; record = entry_at t index }
  in
  transmit t c msg ~deliver:(fun m -> deliver t c ~gen m);
  (* Capped retransmit: the agenda must drain, so after the cap the
     channel goes quiet until the next commit re-pumps it. *)
  Sim.schedule_after t.sim ~delay:t.cfg.retransmit_ns (fun () ->
      if gen = t.gen && c.live && c.acked_through < index && index <= t.count
      then
        if attempt >= t.cfg.max_retransmits then c.inflight <- false
        else send_append t c ~index ~attempt:(attempt + 1))

and pump t c =
  if c.live && (not c.inflight) && c.acked_through < t.count then begin
    c.inflight <- true;
    send_append t c ~index:(c.acked_through + 1) ~attempt:1
  end

and deliver t c ~gen msg =
  if gen <> t.gen then t.n_stale_drops <- t.n_stale_drops + 1
  else
    match msg with
    | Wire.Repl_append { index; record; _ } ->
      t.n_appends_delivered <- t.n_appends_delivered + 1;
      ignore (Follower.apply c.f ~index record);
      (* Always re-ack cumulatively: a duplicated or stale append still
         tells the primary where this follower really is. *)
      let ack =
        Wire.Repl_ack
          { follower = c.f.Follower.id; through = c.f.Follower.applied_through }
      in
      transmit t c ack ~deliver:(fun m -> deliver t c ~gen m)
    | Wire.Repl_ack { through; _ } ->
      t.n_acks_delivered <- t.n_acks_delivered + 1;
      if c.live && through > c.acked_through then begin
        c.acked_through <- through;
        c.inflight <- false;
        settle_gates t;
        pump t c
      end

(* Engine commit hook: append to the cluster log and ship.  The
   zero-fault fast path (no link faults, no hop latency, no partitions)
   applies synchronously with no events and no RNG draws, keeping a
   replicated run byte-identical to a single-node one. *)
let on_commit t (r : Wal.record) =
  push t r;
  Hashtbl.replace t.index_of_txn r.Wal.txn t.count;
  if not t.evented then
    Array.iter
      (fun c ->
        if c.live then begin
          ignore (Follower.apply c.f ~index:t.count r);
          c.acked_through <- t.count
        end)
      t.chans
  else Array.iter (fun c -> pump t c) t.chans

let gate_commit t ~txn ~k =
  match t.cfg.ack_mode with
  | Async -> k Acked
  | Sync ->
    let index =
      match Hashtbl.find_opt t.index_of_txn txn with
      | Some i -> i
      | None -> 0  (* read-only commit: nothing to replicate *)
    in
    if index <= min_acked t then k Acked
    else begin
      let g = { g_index = index; g_settled = false; g_k = k } in
      Queue.push g t.gates;
      Sim.schedule_after t.sim ~delay:t.cfg.gate_timeout_ns (fun () ->
          if not g.g_settled then begin
            g.g_settled <- true;
            t.n_gate_timeouts <- t.n_gate_timeouts + 1;
            g.g_k Ack_timeout
          end)
    end

let failover t =
  match live_chans t with
  | [] -> None
  | cs ->
    let better a b =
      (* honest election: most caught-up wins; Promote_lagging picks the
         straggler instead.  Ties break to the lowest id either way. *)
      let cmp =
        Int.compare a.f.Follower.applied_through b.f.Follower.applied_through
      in
      if Repl_fault.has_fault t.cfg.faults Repl_fault.Promote_lagging then
        if cmp <= 0 then a else b
      else if cmp >= 0 then a
      else b
    in
    let target = List.fold_left better (List.hd cs) (List.tl cs) in
    let old_count = t.count in
    let survived_n = target.f.Follower.applied_through in
    let slice a b =
      if b < a then [] else List.init (b - a + 1) (fun k -> entry_at t (a + k))
    in
    let survived = slice 1 survived_n in
    let lost = slice (survived_n + 1) old_count in
    target.live <- false;
    t.n_failovers <- t.n_failovers + 1;
    t.gen <- t.gen + 1;
    t.count <- survived_n;
    Hashtbl.reset t.index_of_txn;
    List.iteri
      (fun i r -> Hashtbl.replace t.index_of_txn r.Wal.txn (i + 1))
      survived;
    (* Commits still gated on replication learn their fate now: inside
       the survivor prefix they are durably replicated; beyond it they
       are gone with the old timeline. *)
    Queue.iter
      (fun g ->
        if not g.g_settled then begin
          g.g_settled <- true;
          g.g_k (if g.g_index <= survived_n then Acked else Lost_at_failover)
        end)
      t.gates;
    Queue.clear t.gates;
    Array.iter
      (fun c ->
        if c.live then begin
          Follower.rebuild c.f ~initial:t.initial ~records:survived;
          c.acked_through <- survived_n;
          c.inflight <- false
        end)
      t.chans;
    Some
      {
        target = target.f.Follower.id;
        survived;
        lost;
        target_lag = old_count - survived_n;
      }

let maybe_follower_read t ~cells ~snapshot =
  if t.cfg.follower_read_prob <= 0.0 then None
  else if not (Rng.chance t.rng t.cfg.follower_read_prob) then None
  else
    match live_chans t with
    | [] -> None
    | cs ->
      let c = List.nth cs (Rng.int t.rng (List.length cs)) in
      let snap = snapshot () in
      let f = c.f in
      if f.Follower.applied_ts >= snap then begin
        (* Complete prefix through the snapshot: identical to a primary
           read at the same instant. *)
        t.n_follower_reads <- t.n_follower_reads + 1;
        Some (Follower.read f ~cells ~ts:snap)
      end
      else if
        Repl_fault.has_fault t.cfg.faults Repl_fault.Stale_follower_read
        && snap - f.Follower.applied_ts <= t.cfg.staleness_bound_ns
      then begin
        t.n_follower_reads <- t.n_follower_reads + 1;
        t.n_stale_serves <- t.n_stale_serves + 1;
        Some (Follower.read f ~cells ~ts:(min snap f.Follower.applied_ts))
      end
      else None

let stats t =
  {
    appends_sent = t.n_appends_sent;
    resends = t.n_resends;
    appends_delivered = t.n_appends_delivered;
    acks_delivered = t.n_acks_delivered;
    partition_drops = t.n_partition_drops;
    stale_drops = t.n_stale_drops;
    gate_timeouts = t.n_gate_timeouts;
    follower_reads = t.n_follower_reads;
    stale_serves = t.n_stale_serves;
    failovers = t.n_failovers;
    link_dropped = Faulty_link.dropped t.link;
    link_duplicated = Faulty_link.duplicated t.link;
    link_delayed = Faulty_link.delayed t.link;
    link_reordered = Faulty_link.reordered t.link;
    link_resets = Faulty_link.resets t.link;
    log_length = t.count;
    min_acked = min_acked t;
  }
