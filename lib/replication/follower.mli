(** A replica: a version store fed exclusively by the replication log.

    The primary appends commit records in commit-stamp order and the
    follower applies them strictly in sequence, so [applied_ts] is an
    exact visibility horizon — the store holds every version with
    [commit_ts <= applied_ts] and none beyond it.  A read at a snapshot
    [<= applied_ts] therefore observes exactly what the primary would
    serve at the same snapshot. *)

type t = {
  id : int;  (** link-session id of this follower *)
  mutable store : Minidb.Version_store.t;
  mutable applied_through : int;
      (** highest contiguously applied log index (1-based; 0 = none) *)
  mutable applied_ts : int;
      (** commit stamp of the last applied entry; 0 if none *)
}

val create :
  id:int -> initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list -> t

val apply : t -> index:int -> Minidb.Wal.record -> bool
(** Apply log entry [index] if it is exactly the next expected one
    ([applied_through + 1]); returns whether it was applied.  Stale
    retransmits and out-of-order deliveries are rejected — the follower's
    cumulative ack tells the primary what to resend. *)

val read :
  t ->
  cells:Leopard_trace.Cell.t list ->
  ts:int ->
  Leopard_trace.Trace.item list
(** Snapshot read at [ts] against the replica's store (missing cells read
    as 0, matching the engine's convention). *)

val rebuild :
  t ->
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  records:Minidb.Wal.record list ->
  unit
(** Reset the replica to exactly the survivor prefix chosen at failover:
    a fresh store replayed from [records] (oldest first), with
    [applied_through]/[applied_ts] set to the prefix's end. *)
