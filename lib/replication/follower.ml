module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Version_store = Minidb.Version_store
module Wal = Minidb.Wal
module Recovery = Minidb.Recovery

(* A follower is a version store fed exclusively by the replication log,
   in log order.  Because the primary appends commit records in commit-
   stamp order (stamps are monotone) and entries apply strictly in
   sequence, [applied_ts] is an exact visibility horizon: the follower's
   store holds *every* version with commit_ts <= applied_ts and *no*
   version beyond it.  That is what makes follower reads at a snapshot
   [<= applied_ts] sound. *)
type t = {
  id : int;
  mutable store : Version_store.t;
  mutable applied_through : int;  (* highest contiguously applied index *)
  mutable applied_ts : int;  (* commit stamp of that entry; 0 if none *)
}

let install_record store (r : Wal.record) =
  List.iter
    (fun (w : Wal.write) ->
      Version_store.install store w.Wal.cell
        {
          Version_store.value = w.Wal.value;
          writer = r.Wal.txn;
          writer_ts = r.Wal.start_ts;
          write_op = w.Wal.write_op;
          commit_ts = w.Wal.commit_ts;
        };
      let info = Version_store.row_info store (Cell.row_key w.Wal.cell) in
      if r.Wal.commit_ts >= info.Version_store.last_commit_ts then begin
        info.Version_store.last_commit_ts <- r.Wal.commit_ts;
        info.Version_store.last_writer <- r.Wal.txn;
        info.Version_store.last_writer_ts <- r.Wal.start_ts
      end)
    r.Wal.writes

let create ~id ~initial =
  let store = Version_store.create () in
  List.iter (fun (cell, value) -> Version_store.load store cell value) initial;
  { id; store; applied_through = 0; applied_ts = 0 }

let apply t ~index record =
  if index <> t.applied_through + 1 then false
    (* stale retransmit or a gap from reordering: the cumulative ack for
       [applied_through] tells the primary what to resend *)
  else begin
    install_record t.store record;
    t.applied_through <- index;
    t.applied_ts <- record.Wal.commit_ts;
    true
  end

let read t ~cells ~ts =
  List.map
    (fun cell ->
      let value =
        match Version_store.visible t.store cell ~ts with
        | Some v -> v.Version_store.value
        | None -> 0
      in
      { Trace.cell; value })
    cells

let rebuild t ~initial ~records =
  let store, _summary =
    Recovery.replay ~initial ~records
      ~fresh_ts:(fun () -> 0)
      ~damage:Wal.zero_damage
  in
  t.store <- store;
  t.applied_through <- List.length records;
  t.applied_ts <-
    (match List.rev records with
    | last :: _ -> last.Wal.commit_ts
    | [] -> 0)
