(* The replication/failover fault vocabulary — the fifth fault plane.

   Like the engine's [Minidb.Fault] and the WAL's durability faults,
   these are *planted bugs*, not environmental noise: partitions, hop
   latency and link faults (the environment) can delay or strand
   replication without any of these, and an honest failover then reports
   its lost suffix so the checker degrades to Inconclusive.  A fault in
   this list makes the cluster *lie or misbehave* — promote the wrong
   node, claim a lossy failover was clean, serve reads from a stale
   horizon, or let a deposed primary keep serving — each planting a real,
   provable isolation violation for Leopard to find. *)

type t =
  | Promote_lagging
      (* failover targets the *least* caught-up follower and claims the
         promotion was clean: every commit past its horizon vanishes
         silently *)
  | Lose_acked_window
      (* a lossy failover (async-acked tail not yet replicated) is
         claimed clean: acked commits vanish without a lost-suffix
         report *)
  | Stale_follower_read
      (* a routed follower read is served at the follower's applied
         horizon even when that is behind the transaction's snapshot *)
  | Split_brain
      (* the deposed primary keeps serving (and committing) for a window
         after promotion: two brains commit concurrently *)

let all = [ Promote_lagging; Lose_acked_window; Stale_follower_read; Split_brain ]

let to_string = function
  | Promote_lagging -> "promote-lagging"
  | Lose_acked_window -> "lose-acked-window"
  | Stale_follower_read -> "stale-follower-read"
  | Split_brain -> "split-brain"

let of_string = function
  | "promote-lagging" -> Some Promote_lagging
  | "lose-acked-window" -> Some Lose_acked_window
  | "stale-follower-read" -> Some Stale_follower_read
  | "split-brain" -> Some Split_brain
  | _ -> None

let description = function
  | Promote_lagging ->
    "failover promotes the least caught-up follower and claims a clean \
     promotion (lost suffix unreported)"
  | Lose_acked_window ->
    "a lossy failover is claimed clean: acked commits beyond the promoted \
     follower's horizon vanish silently"
  | Stale_follower_read ->
    "follower reads are served at the replica's applied horizon even when \
     it is behind the transaction's snapshot"
  | Split_brain ->
    "the deposed primary keeps committing for a window after promotion"

(* The verifier family expected to catch each planted anomaly.  Silently
   lost commits and stale horizons surface as reads served from an
   impossible version chain (CR); two brains committing concurrent
   updates to the same row are certainly-overlapping committed
   co-updaters (FUW). *)
let expected_mechanism = function
  | Promote_lagging | Lose_acked_window | Stale_follower_read -> "CR"
  | Split_brain -> "FUW"

let has_fault faults f = List.mem f faults
