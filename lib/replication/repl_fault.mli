(** Seeded replication/failover faults — the fifth fault plane.

    - {!Minidb.Fault} corrupts live concurrency control;
    - {!Minidb.Wal} faults corrupt what survives a crash;
    - [Harness.Chaos] corrupts trace collection;
    - {!Leopard_net.Faulty_link} corrupts the client wire;
    - {e this module} corrupts replication and leader promotion.

    These are planted bugs, not environmental noise: partitions and link
    faults merely delay or strand log shipping, and an honest failover
    then {e reports} its lost suffix (the checker degrades to
    Inconclusive).  A fault here makes the cluster lie or misbehave,
    planting a definite, mechanism-attributable isolation violation. *)

type t =
  | Promote_lagging
      (** failover targets the {e least} caught-up follower and claims
          the promotion was clean — commits past its horizon vanish
          silently (expected mechanism: CR) *)
  | Lose_acked_window
      (** a lossy failover (async-acked tail not yet replicated) is
          claimed clean — acked commits vanish without a lost-suffix
          report (CR) *)
  | Stale_follower_read
      (** a routed follower read is served at the replica's applied
          horizon even when that is behind the transaction's snapshot
          (CR) *)
  | Split_brain
      (** the deposed primary keeps serving commits for a window after
          promotion — two brains commit concurrently (FUW) *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val description : t -> string

val expected_mechanism : t -> string
(** The verifier family expected to catch the planted anomaly
    (["CR"] or ["FUW"]). *)

val has_fault : t list -> t -> bool
(** Set membership ([has_fault faults f]). *)
