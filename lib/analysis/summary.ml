(* Per-module mutability/escape summaries, extracted from the parsetree.

   A summary records, for every top-level function, the mutable state it
   allocates, the writes it performs (to free variables, to its own
   parameters, under a guard or not), the calls it makes (with enough
   argument structure to follow a captured table into a helper two
   modules away), and every [Domain.spawn]-shaped site.  The race and
   taint passes (race.ml, taint.ml) evaluate the P rules purely from
   these summaries plus the cross-module call graph (callgraph.ml) — no
   reparse — which is what makes the summary cache (driver.ml) sound:
   a module whose digest is unchanged contributes the same summary, so
   only changed modules and their reverse dependencies re-analyze.

   Everything here is syntactic.  Where typing would be needed the
   summary over-approximates in a direction each rule documents, and
   the escape hatch is the usual justified [lint: allow]. *)

open Parsetree

type site = { s_line : int; s_col : int }

let site_of (loc : Location.t) =
  {
    s_line = loc.loc_start.pos_lnum;
    s_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
  }

(* Argument position: labelled arguments match by name, positional ones
   by index among the unlabelled arguments. *)
type arg_key = Kpos of int | Klbl of string

let arg_key_equal a b =
  match (a, b) with
  | Kpos i, Kpos j -> Int.equal i j
  | Klbl x, Klbl y -> String.equal x y
  | Kpos _, Klbl _ | Klbl _, Kpos _ -> false

let arg_key_to_string = function
  | Kpos i -> Printf.sprintf "#%d" i
  | Klbl l -> "~" ^ l

(* Mutable allocation heads.  [Atomic_box] and [Mutex_box] are the two
   sanctioned cross-domain kinds: writes through them never race. *)
type alloc_kind =
  | Ref_cell
  | Arr
  | Tbl
  | Buf
  | Byt
  | Que
  | Stk
  | Atomic_box
  | Mutex_box
  | Unknown_mut

let alloc_kind_name = function
  | Ref_cell -> "ref"
  | Arr -> "array"
  | Tbl -> "Hashtbl"
  | Buf -> "Buffer"
  | Byt -> "Bytes"
  | Que -> "Queue"
  | Stk -> "Stack"
  | Atomic_box -> "Atomic"
  | Mutex_box -> "Mutex"
  | Unknown_mut -> "mutable value"

let alloc_is_safe = function
  | Atomic_box | Mutex_box -> true
  | Ref_cell | Arr | Tbl | Buf | Byt | Que | Stk | Unknown_mut -> false

(* Seed-taint classification for the P003 dataflow: [Tseed] provably
   derives from a seed, [Tplain] provably does not (literals and
   arithmetic over literals), [Topaque] is anything the syntactic pass
   cannot judge — opaque values never fire the rule. *)
type taint_class = Tseed | Tplain | Topaque

(* Where a write (or an ident argument) points.  [t_binder] is the
   lexical binder's id inside the current top-level function; binder
   ids grow monotonically, so a closure knows a target was captured
   from outside iff the id is smaller than the closure's first id. *)
type target = {
  t_path : string list;  (* the ident as written, e.g. ["results"] *)
  t_binder : int option;  (* None: free (module global or open) *)
  t_param : arg_key option;  (* set iff a top-level fn parameter *)
  t_alloc : (alloc_kind * site) option;  (* allocation, when local *)
  t_global : bool;  (* resolved to a module-level binding *)
  t_taint : taint_class;
}

type write = {
  w_target : target;
  w_op : string;  (* ":=", "Array.set", "Hashtbl.replace", ... *)
  w_site : site;
  w_guarded : bool;  (* syntactically under Mutex.protect/with_lock *)
}

type head = Hpath of string list | Hparam of arg_key | Hdyn

type closure = {
  cl_site : site;
  cl_first : int;  (* binder ids >= cl_first were bound inside *)
  cl_writes : write list;  (* flattened over the whole subtree *)
  cl_calls : call list;  (* flattened over the whole subtree *)
  cl_spawns : spawn list;
}

and call = {
  c_head : head;
  c_site : site;
  c_args : (arg_key * argv) list;
}

and argv = Av_closure of closure | Av_target of target | Av_value of taint_class

and spawn = { sp_site : site; sp_head : string; sp_body : argv option }

type fn = {
  fn_name : string;
  fn_site : site;
  fn_params : (arg_key * string) list;
  fn_body : closure;
}

type global = { g_name : string; g_kind : alloc_kind; g_site : site }

type t = {
  m_name : string;  (* module name: capitalized basename *)
  m_path : string;
  m_zone : Zone.t;
  m_fns : fn list;
  m_globals : global list;
}

let module_name_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Longident helpers (local copies; rules.ml keeps its own)            *)
(* ------------------------------------------------------------------ *)

let rec lid_parts (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> lid_parts l @ [ s ]
  | Lapply (a, b) -> lid_parts a @ lid_parts b

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let last_two parts =
  match List.rev parts with
  | f :: m :: _ -> (m, f)
  | [ f ] -> ("", f)
  | [] -> ("", "")

(* ------------------------------------------------------------------ *)
(* Head classification tables                                          *)
(* ------------------------------------------------------------------ *)

let alloc_of_head parts =
  match last_two parts with
  | "", "ref" -> Some Ref_cell
  | ( "Array",
      ( "make" | "init" | "create_float" | "copy" | "of_list" | "append"
      | "sub" | "concat" | "make_matrix" ) ) ->
    Some Arr
  | "Hashtbl", ("create" | "copy") -> Some Tbl
  | "Buffer", "create" -> Some Buf
  | "Bytes", ("create" | "make" | "copy" | "of_string") -> Some Byt
  | "Queue", ("create" | "copy") -> Some Que
  | "Stack", ("create" | "copy") -> Some Stk
  | "Atomic", "make" -> Some Atomic_box
  | "Mutex", "create" -> Some Mutex_box
  | _ -> None

(* Mutating heads: (module, fn) -> index (among unlabelled args) of the
   container being mutated.  Atomic mutators are deliberately absent:
   writes through [Atomic.t] are the sanctioned cross-domain channel. *)
let mutator_of_head parts =
  match last_two parts with
  | "", ":=" -> Some 0
  | "", ("incr" | "decr") -> Some 0
  | "Array", ("set" | "unsafe_set" | "fill") -> Some 0
  | "Array", ("sort" | "fast_sort" | "stable_sort") -> Some 1
  | "Array", "blit" -> Some 2
  | "Hashtbl", ("add" | "replace" | "remove" | "reset" | "clear") -> Some 0
  | "Hashtbl", ("filter_map_inplace" | "add_seq" | "replace_seq") -> Some 1
  | ( "Buffer",
      ( "add_char" | "add_string" | "add_bytes" | "add_substring"
      | "add_subbytes" | "add_buffer" | "add_channel" | "clear" | "reset"
      | "truncate" ) ) ->
    Some 0
  | "Bytes", ("set" | "unsafe_set" | "fill") -> Some 0
  | "Bytes", "blit" -> Some 2
  | "Queue", ("add" | "push") -> Some 1
  | "Queue", ("pop" | "take" | "clear" | "transfer") -> Some 0
  | "Stack", "push" -> Some 1
  | "Stack", ("pop" | "clear") -> Some 0
  | _ -> None

let is_guard_head parts =
  match last_two parts with
  | "Mutex", "protect" -> true
  | _, ("with_lock" | "with_mutex" | "critical_section") -> true
  | _ -> false

let is_spawn_head parts =
  match last_two parts with "Domain", "spawn" -> true | _ -> false

let is_rng_create_head parts =
  match last_two parts with "Rng", "create" -> true | _ -> false

let is_rng_derive_head parts =
  match last_two parts with
  | "Rng", ("derive" | "split" | "copy") -> true
  | _, "sub_seed" -> true
  | _ -> false

let path_mentions_seed parts =
  List.exists
    (fun p ->
      let p = String.lowercase_ascii p in
      let n = String.length p in
      let rec go i =
        i + 4 <= n && (String.equal (String.sub p i 4) "seed" || go (i + 1))
      in
      go 0)
    parts

(* ------------------------------------------------------------------ *)
(* The extraction walker                                               *)
(* ------------------------------------------------------------------ *)

(* Lexical environment entry for one bound name. *)
type entry = {
  e_id : int;
  e_param : arg_key option;
  e_alloc : (alloc_kind * site) option;
  e_global : bool;
  e_taint : taint_class;
  e_fn : closure option;  (* a let-bound lambda: its analyzed body *)
}

type env = { bindings : (string * entry) list }

let lookup env name = List.assoc_opt name env.bindings

let bind env name entry = { bindings = (name, entry) :: env.bindings }

(* One collector per open closure; writes/calls/spawns are recorded in
   every collector on the stack, which is what flattens subtrees. *)
type collector = {
  mutable k_writes : write list;
  mutable k_calls : call list;
  mutable k_spawns : spawn list;
}

type walker = {
  mutable counter : int;
  mutable stack : collector list;
  mutable globals : global list;
}

let fresh_id w =
  w.counter <- w.counter + 1;
  w.counter

let push_write w wr = List.iter (fun k -> k.k_writes <- wr :: k.k_writes) w.stack
let push_call w c = List.iter (fun k -> k.k_calls <- c :: k.k_calls) w.stack
let push_spawn w s = List.iter (fun k -> k.k_spawns <- s :: k.k_spawns) w.stack

let plain_entry w = {
  e_id = fresh_id w;
  e_param = None;
  e_alloc = None;
  e_global = false;
  e_taint = Topaque;
  e_fn = None;
}

let target_of_ident env parts =
  let seedy = path_mentions_seed parts in
  match parts with
  | [ name ] -> (
    match lookup env name with
    | Some e ->
      {
        t_path = parts;
        t_binder = Some e.e_id;
        t_param = e.e_param;
        t_alloc = e.e_alloc;
        t_global = e.e_global;
        t_taint = (if seedy then Tseed else e.e_taint);
      }
    | None ->
      {
        t_path = parts;
        t_binder = None;
        t_param = None;
        t_alloc = None;
        t_global = false;
        t_taint = (if seedy then Tseed else Topaque);
      })
  | _ ->
    (* Qualified: another module's global or an external value. *)
    {
      t_path = parts;
      t_binder = None;
      t_param = None;
      t_alloc = None;
      t_global = false;
      t_taint = (if seedy then Tseed else Topaque);
    }

(* Syntactic seed-taint of an arbitrary expression. *)
let rec taint_of env e =
  match e.pexp_desc with
  | Pexp_constant _ -> Tplain
  | Pexp_ident { txt; _ } ->
    (target_of_ident env (strip_stdlib (lid_parts txt))).t_taint
  | Pexp_field (b, { txt; _ }) ->
    if path_mentions_seed (lid_parts txt) then Tseed else taint_of env b
  | Pexp_apply (f, args) -> (
    let head =
      match f.pexp_desc with
      | Pexp_ident { txt; _ } -> strip_stdlib (lid_parts txt)
      | _ -> []
    in
    if is_rng_derive_head head || path_mentions_seed head then Tseed
    else
      let ts = List.map (fun (_, a) -> taint_of env a) args in
      if List.exists (fun t -> t = Tseed) ts then Tseed
      else if ts <> [] && List.for_all (fun t -> t = Tplain) ts then Tplain
      else Topaque)
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> taint_of env body
  | Pexp_constraint (b, _) -> taint_of env b
  | Pexp_ifthenelse (_, a, Some b) -> (
    match (taint_of env a, taint_of env b) with
    | Tseed, _ | _, Tseed -> Tseed
    | Tplain, Tplain -> Tplain
    | _ -> Topaque)
  | _ -> Topaque

let keyed_args args =
  let pos = ref (-1) in
  List.map
    (fun ((lbl : Asttypes.arg_label), a) ->
      match lbl with
      | Nolabel ->
        incr pos;
        (Kpos !pos, a)
      | Labelled l | Optional l -> (Klbl l, a))
    args

(* Parameter chain of a lambda: returns (params, body). *)
let rec fun_params acc pos e =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
    let name =
      match pat.ppat_desc with
      | Ppat_var { txt; _ } -> txt
      | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
      | _ -> "_"
    in
    let key, pos =
      match (lbl : Asttypes.arg_label) with
      | Nolabel -> (Kpos pos, pos + 1)
      | Labelled l | Optional l -> (Klbl l, pos)
    in
    fun_params ((key, name) :: acc) pos body
  | Pexp_newtype (_, body) -> fun_params acc pos body
  | _ -> (List.rev acc, e)

let is_lambda e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* [analyze_closure] walks a lambda in [env] with a fresh collector on
   the stack (enclosing collectors stay below it, so every write also
   flattens outward) and returns (params, closure record). *)
let rec analyze_closure w env ~guarded ~fn_params_flag e =
  let params, body = fun_params [] 0 e in
  let env =
    List.fold_left
      (fun env (key, name) ->
        if String.equal name "_" then env
        else
          bind env name
            {
              e_id = fresh_id w;
              e_param = (if fn_params_flag then Some key else None);
              e_alloc = None;
              e_global = false;
              e_taint =
                (if path_mentions_seed [ name ] then Tseed else Topaque);
              e_fn = None;
            })
      env params
  in
  let first = w.counter + 1 in
  let k = { k_writes = []; k_calls = []; k_spawns = [] } in
  w.stack <- k :: w.stack;
  (match body.pexp_desc with
  | Pexp_function cases -> walk_cases w env ~guarded cases
  | _ -> walk_expr w env ~guarded body);
  w.stack <- List.tl w.stack;
  ( params,
    {
      cl_site = site_of e.pexp_loc;
      cl_first = first;
      cl_writes = List.rev k.k_writes;
      cl_calls = List.rev k.k_calls;
      cl_spawns = List.rev k.k_spawns;
    } )

and walk_cases w env ~guarded cases =
  List.iter
    (fun c ->
      let env' = bind_pattern_vars w env c.pc_lhs in
      (match c.pc_guard with
      | Some g -> walk_expr w env' ~guarded g
      | None -> ());
      walk_expr w env' ~guarded c.pc_rhs)
    cases

and classify_arg w env ~guarded (e : expression) =
  if is_lambda e then begin
    let _, cl = analyze_closure w env ~guarded ~fn_params_flag:false e in
    Av_closure cl
  end
  else
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      let parts = strip_stdlib (lid_parts txt) in
      match parts with
      | [ name ] -> (
        match lookup env name with
        | Some { e_fn = Some cl; _ } -> Av_closure cl
        | _ -> Av_target (target_of_ident env parts))
      | _ -> Av_target (target_of_ident env parts))
    | _ ->
      walk_expr w env ~guarded e;
      Av_value (taint_of env e)

and record_call w env ~guarded head site args =
  let kargs =
    List.map (fun (key, a) -> (key, classify_arg w env ~guarded a)) args
  in
  push_call w { c_head = head; c_site = site; c_args = kargs }

and dispatch_apply w env ~guarded parts site args =
  if is_spawn_head parts then
    push_spawn w
      {
        sp_site = site;
        sp_head = String.concat "." parts;
        sp_body =
          (match args with
          | (_, arg) :: _ -> Some (classify_arg w env ~guarded arg)
          | [] -> None);
      }
  else if is_guard_head parts then
    (* everything under the guard is mutex-protected *)
    List.iter (fun (_, a) -> walk_expr w env ~guarded:true a) args
  else
    match mutator_of_head parts with
    | Some idx ->
      (match
         List.find_opt (fun (key, _) -> arg_key_equal key (Kpos idx)) args
       with
      | Some (_, { pexp_desc = Pexp_ident { txt = c; _ }; _ }) ->
        push_write w
          {
            w_target = target_of_ident env (strip_stdlib (lid_parts c));
            w_op = String.concat "." parts;
            w_site = site;
            w_guarded = guarded;
          }
      | _ -> ());
      List.iter (fun (_, a) -> walk_expr w env ~guarded a) args
    | None ->
      let head =
        match parts with
        | [ name ] -> (
          match lookup env name with
          | Some { e_param = Some key; _ } -> Hparam key
          | _ -> Hpath parts)
        | _ -> Hpath parts
      in
      record_call w env ~guarded head site args;
      (* Calling a nested lambda executes its body here: splice its
         closure in so spawned-closure evaluation sees its writes. *)
      (match parts with
      | [ name ] -> (
        match lookup env name with
        | Some { e_fn = Some cl; _ } ->
          push_call w
            { c_head = Hdyn; c_site = site; c_args = [ (Kpos 0, Av_closure cl) ] }
        | _ -> ())
      | _ -> ())

and walk_expr w env ~guarded e =
  match e.pexp_desc with
  | Pexp_apply (f, raw_args) -> (
    let args = keyed_args raw_args in
    match f.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      let parts = strip_stdlib (lid_parts txt) in
      (* Pipelines forward the application: [x |> f] is [f x]. *)
      match (parts, args) with
      | [ "|>" ], [ (_, lhs); (_, rhs) ] -> walk_pipeline w env ~guarded rhs lhs
      | [ "@@" ], [ (_, lhs); (_, rhs) ] -> walk_pipeline w env ~guarded lhs rhs
      | _ -> dispatch_apply w env ~guarded parts (site_of loc) args)
    | _ ->
      walk_expr w env ~guarded f;
      List.iter (fun (_, a) -> walk_expr w env ~guarded a) args)
  | Pexp_setfield (b, { txt; _ }, v) ->
    (match b.pexp_desc with
    | Pexp_ident { txt = bi; loc } ->
      let field =
        match List.rev (lid_parts txt) with f :: _ -> f | [] -> ""
      in
      push_write w
        {
          w_target = target_of_ident env (strip_stdlib (lid_parts bi));
          w_op = ("<-" ^ if String.equal field "" then "" else " ." ^ field);
          w_site = site_of loc;
          w_guarded = guarded;
        }
    | _ -> walk_expr w env ~guarded b);
    walk_expr w env ~guarded v
  | Pexp_let (rec_flag, vbs, body) ->
    let env' = walk_bindings w env ~guarded ~toplevel:false rec_flag vbs in
    walk_expr w env' ~guarded body
  | Pexp_fun _ | Pexp_function _ ->
    (* A lambda in generic position (returned, stored in a structure):
       analyze it so its writes surface in the enclosing subtree. *)
    let _, cl = analyze_closure w env ~guarded ~fn_params_flag:false e in
    push_call w
      {
        c_head = Hdyn;
        c_site = cl.cl_site;
        c_args = [ (Kpos 0, Av_closure cl) ];
      }
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
    walk_expr w env ~guarded scr;
    walk_cases w env ~guarded cases
  | Pexp_sequence (a, b) | Pexp_while (a, b) ->
    walk_expr w env ~guarded a;
    walk_expr w env ~guarded b
  | Pexp_for (pat, lo, hi, _, body) ->
    walk_expr w env ~guarded lo;
    walk_expr w env ~guarded hi;
    walk_expr w (bind_pattern_vars w env pat) ~guarded body
  | Pexp_ifthenelse (c, a, b) ->
    walk_expr w env ~guarded c;
    walk_expr w env ~guarded a;
    Option.iter (walk_expr w env ~guarded) b
  | Pexp_tuple es | Pexp_array es -> List.iter (walk_expr w env ~guarded) es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
    Option.iter (walk_expr w env ~guarded) arg
  | Pexp_record (fields, base) ->
    Option.iter (walk_expr w env ~guarded) base;
    List.iter (fun (_, v) -> walk_expr w env ~guarded v) fields
  | Pexp_field (b, _) -> walk_expr w env ~guarded b
  | Pexp_constraint (b, _)
  | Pexp_coerce (b, _, _)
  | Pexp_lazy b
  | Pexp_assert b
  | Pexp_newtype (_, b)
  | Pexp_open (_, b)
  | Pexp_letexception (_, b)
  | Pexp_setinstvar (_, b)
  | Pexp_send (b, _)
  | Pexp_poly (b, _) ->
    walk_expr w env ~guarded b
  | Pexp_letmodule (_, _, b) -> walk_expr w env ~guarded b
  | Pexp_override fields ->
    List.iter (fun (_, v) -> walk_expr w env ~guarded v) fields
  | Pexp_letop { let_; ands; body } ->
    walk_expr w env ~guarded let_.pbop_exp;
    List.iter (fun a -> walk_expr w env ~guarded a.pbop_exp) ands;
    walk_expr w env ~guarded body
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable | Pexp_extension _
  | Pexp_new _ | Pexp_pack _ | Pexp_object _ ->
    ()

and walk_pipeline w env ~guarded f x =
  (* [x |> f] / [f @@ x]: dispatch as if [f x] so spawn/guard/mutator
     heads still classify; partial applications extend the arg list. *)
  match f.pexp_desc with
  | Pexp_ident { txt; loc } ->
    dispatch_apply w env ~guarded
      (strip_stdlib (lid_parts txt))
      (site_of loc)
      [ (Kpos 0, x) ]
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, raw_args) ->
    let args = keyed_args raw_args in
    let npos =
      List.fold_left
        (fun n (k, _) -> match k with Kpos _ -> n + 1 | Klbl _ -> n)
        0 args
    in
    dispatch_apply w env ~guarded
      (strip_stdlib (lid_parts txt))
      (site_of loc)
      (args @ [ (Kpos npos, x) ])
  | _ ->
    walk_expr w env ~guarded f;
    walk_expr w env ~guarded x

and bind_pattern_vars w env pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } ->
    bind env txt
      {
        (plain_entry w) with
        e_taint = (if path_mentions_seed [ txt ] then Tseed else Topaque);
      }
  | Ppat_alias (p, { txt; _ }) ->
    bind (bind_pattern_vars w env p) txt (plain_entry w)
  | Ppat_tuple ps | Ppat_array ps ->
    List.fold_left (bind_pattern_vars w) env ps
  | Ppat_construct (_, Some (_, p))
  | Ppat_constraint (p, _)
  | Ppat_lazy p
  | Ppat_open (_, p)
  | Ppat_exception p ->
    bind_pattern_vars w env p
  | Ppat_or (a, b) -> bind_pattern_vars w (bind_pattern_vars w env a) b
  | Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> bind_pattern_vars w acc p) env fields
  | Ppat_variant (_, Some p) -> bind_pattern_vars w env p
  | _ -> env

(* Walk one let-binding group; returns the extended environment.  Lambda
   bindings are analyzed exactly once, here, and their closure records
   ride in the environment for call sites and spawn args to pick up. *)
and walk_bindings w env ~guarded ~toplevel rec_flag vbs =
  ignore toplevel;
  List.fold_left
    (fun acc vb ->
      let name =
        match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ }
        | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
          Some txt
        | _ -> None
      in
      match name with
      | None ->
        walk_expr w env ~guarded vb.pvb_expr;
        bind_pattern_vars w acc vb.pvb_pat
      | Some name ->
        let id = fresh_id w in
        if is_lambda vb.pvb_expr then begin
          (* For [let rec], the lambda may call itself; its own name
             resolves to a plain entry (no e_fn), breaking the inline
             cycle. *)
          let self_env =
            match (rec_flag : Asttypes.rec_flag) with
            | Recursive ->
              bind env name
                { (plain_entry w) with e_id = id }
            | Nonrecursive -> env
          in
          let _, cl =
            analyze_closure w self_env ~guarded ~fn_params_flag:false
              vb.pvb_expr
          in
          bind acc name { (plain_entry w) with e_id = id; e_fn = Some cl }
        end
        else begin
          walk_expr w env ~guarded vb.pvb_expr;
          let alloc =
            match vb.pvb_expr.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
              Option.map
                (fun k -> (k, site_of loc))
                (alloc_of_head (strip_stdlib (lid_parts txt)))
            | _ -> None
          in
          bind acc name
            {
              e_id = id;
              e_param = None;
              e_alloc = alloc;
              e_global = false;
              e_taint =
                (if path_mentions_seed [ name ] then Tseed
                 else taint_of env vb.pvb_expr);
              e_fn = None;
            }
        end)
    env vbs

(* ------------------------------------------------------------------ *)
(* Structure-level extraction                                          *)
(* ------------------------------------------------------------------ *)

let extract ~path ~zone (str : structure) =
  let w = { counter = 0; stack = []; globals = [] } in
  let fns = ref [] in
  let genv = ref { bindings = [] } in
  let collect_effects name loc f =
    let k = { k_writes = []; k_calls = []; k_spawns = [] } in
    w.stack <- [ k ];
    f ();
    w.stack <- [];
    if k.k_writes <> [] || k.k_calls <> [] || k.k_spawns <> [] then
      fns :=
        {
          fn_name = name;
          fn_site = site_of loc;
          fn_params = [];
          fn_body =
            {
              cl_site = site_of loc;
              cl_first = 0;
              cl_writes = List.rev k.k_writes;
              cl_calls = List.rev k.k_calls;
              cl_spawns = List.rev k.k_spawns;
            };
        }
        :: !fns
  in
  let top_binding rec_flag vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = name; _ }
    | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _) ->
      if is_lambda vb.pvb_expr then begin
        let self_env =
          match (rec_flag : Asttypes.rec_flag) with
          | Recursive ->
            bind !genv name { (plain_entry w) with e_global = true }
          | Nonrecursive -> !genv
        in
        let k = { k_writes = []; k_calls = []; k_spawns = [] } in
        w.stack <- [ k ];
        let params, body =
          analyze_closure w self_env ~guarded:false ~fn_params_flag:true
            vb.pvb_expr
        in
        w.stack <- [];
        fns :=
          {
            fn_name = name;
            fn_site = site_of vb.pvb_loc;
            fn_params = params;
            fn_body = body;
          }
          :: !fns;
        genv := bind !genv name { (plain_entry w) with e_global = true }
      end
      else begin
        let alloc =
          match vb.pvb_expr.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
            Option.map
              (fun k -> (k, site_of loc))
              (alloc_of_head (strip_stdlib (lid_parts txt)))
          | _ -> None
        in
        (match alloc with
        | Some (kind, _) ->
          w.globals <-
            { g_name = name; g_kind = kind; g_site = site_of vb.pvb_loc }
            :: w.globals
        | None -> ());
        (* Module-init side effects count too (e.g. registering into a
           table at load time). *)
        collect_effects ("(init:" ^ name ^ ")") vb.pvb_loc (fun () ->
            walk_expr w !genv ~guarded:false vb.pvb_expr);
        genv :=
          bind !genv name
            {
              (plain_entry w) with
              e_alloc = alloc;
              e_global = true;
              e_taint =
                (if path_mentions_seed [ name ] then Tseed else Topaque);
            }
      end
    | _ -> ()
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (rec_flag, vbs) -> List.iter (top_binding rec_flag) vbs
      | Pstr_eval (e, _) ->
        collect_effects "(toplevel)" item.pstr_loc (fun () ->
            walk_expr w !genv ~guarded:false e)
      | _ -> ())
    str;
  {
    m_name = module_name_of_path path;
    m_path = path;
    m_zone = zone;
    m_fns = List.rev !fns;
    m_globals = List.rev w.globals;
  }
