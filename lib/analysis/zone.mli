(** Source-tree zones — the unit of rule scoping.

    Every rule in {!Rules} applies to a subset of zones: fault
    construction is legal in the harness but not in the engine's hot
    paths, wall-clock reads are legal only in the dedicated clock
    module, baselines are exempt from the iteration-order rule (they
    are reference implementations, not part of the verdict path).  The
    zone of a file is derived purely from its path, so the same file
    always gets the same obligations no matter how the linter was
    invoked. *)

type t =
  | Core  (** [lib/core] — the verifier; the verdict path *)
  | Trace_lib  (** [lib/trace] — trace model and codec *)
  | Minidb  (** [lib/minidb] — the engine under test *)
  | Harness  (** [lib/harness] — run orchestration, chaos injection *)
  | Net  (** [lib/net] — wire protocol and fault channel *)
  | Replication  (** [lib/replication] — cluster, failover, repl faults *)
  | Shard  (** [lib/shard] — hash-range partitioning, 2PC coordinator *)
  | Compose  (** [lib/compose] — stacked fault-plane orchestration *)
  | Campaign
      (** [lib/campaign] — grid sweeps; cell bodies must be pure functions
          of the cell, so wall-clock reads are banned outright here *)
  | Util  (** [lib/util] — seeded RNG, clock, containers *)
  | Workload  (** [lib/workload] — benchmark program generators *)
  | Baselines  (** [lib/baselines] — reference checkers *)
  | Analysis  (** [lib/analysis] — this linter (self-hosted rules) *)
  | Bin  (** [bin] — executables; owns exit codes *)
  | Bench  (** [bench] — benchmark driver *)
  | Examples  (** [examples] *)
  | Test  (** [test] — may invoke faults freely; not linted by the gate *)
  | Other  (** anything else — treated like [Bin] *)

val of_path : string -> t
(** Classify by path segments: [.../lib/<sub>/...] maps to the library
    zones, top-level [bin]/[bench]/[examples]/[test] to theirs. *)

val of_string : string -> t option
(** Parse a [--zone] argument (lowercase zone name, e.g. ["core"]). *)

val to_string : t -> string

val all : t list
