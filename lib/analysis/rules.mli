(** The rule catalogue and the Parsetree checks behind it.

    Three groups mirror the repo's real hazard planes (docs/ANALYSIS.md
    has the full catalogue with rationale):

    - {b D — determinism}: byte-identical seeded replay forbids global
      [Random], wall-clock reads outside the clock module, hashtable
      iteration order escaping into traces or verdicts, and polymorphic
      [compare]/[Hashtbl.hash];
    - {b F — fault-plane isolation}: fault injection is a harness
      capability; the verdict path ([lib/core], [lib/trace]) must not
      reference fault machinery at all, and engine hot paths may
      consult fault sets but never construct fault values; [exit] is
      owned by [bin];
    - {b E — verdict exhaustiveness}: matches over the verdict,
      abort-reason and codec tag variant families must spell their arms
      out, so adding a variant breaks the build loudly instead of
      silently downgrading a Violation.

    Checks are purely syntactic (Parsetree only, no typing), which is
    what lets the linter run on a bare source tree in milliseconds; the
    few places where syntax over-approximates (a local value punned
    [compare], a membership test on a fault set) are handled by named
    absolutions documented on each rule, or by an explicit
    [(* lint: allow <slug> *)] suppression with a justification.

    Two further groups are evaluated interprocedurally by the driver
    from per-module summaries ({!Summary}, {!Callgraph}) rather than by
    {!check}:

    - {b P — parallelism}: shared mutable state reachable from a
      spawned closure without an Atomic/Mutex guard (P001), cross-
      domain communication through non-atomic globals (P002), and
      seed-taint discipline for RNG construction in the sweep zones
      (P003);
    - {b S — hygiene}: suppressions that suppress nothing (S001), so
      justified exceptions cannot rot silently. *)

type group = Determinism | Fault_plane | Exhaustiveness | Parallelism | Hygiene

val group_to_string : group -> string

type t = {
  code : string;  (** stable id, e.g. ["D001"] *)
  slug : string;  (** suppression key, e.g. ["random-global"] *)
  group : group;
  summary : string;  (** one-line description for [--list-rules] *)
  rationale : string;  (** why violating it endangers the system *)
}

val all : t list
(** The catalogue, in code order. *)

val find_slug : string -> t option

val p001 : t
val p002 : t
val p003 : t
val s001 : t
(** The interprocedurally-evaluated rules, exposed for {!Race},
    {!Taint} and the driver's stale-suppression pass. *)

val applies : t -> Zone.t -> basename:string -> bool
(** Does [rule] hold files of [zone] to its obligation?  Exposed so the
    interprocedural passes scope their findings exactly like {!check}
    does. *)

type raw = { rule : t; line : int; col : int; msg : string }
(** A finding before suppression filtering (1-based line, 0-based col). *)

val check : zone:Zone.t -> basename:string -> Parsetree.structure -> raw list
(** Run every rule applicable to [zone]/[basename] over one parsed
    implementation; findings come back in source order. *)
