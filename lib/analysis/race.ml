(* P001/P002: domain-safety of spawn contexts.

   A {e spawn context} is a closure that will run on another domain:
   the argument of a [Domain.spawn], or a closure passed at a parameter
   the call graph proved spawned (e.g. [Pool.map]'s [f]).  For each
   context the rule walks its flattened writes and resolved calls:

   - an unguarded write whose target was captured from outside the
     closure is a race; it resolves either to a module-level global
     (P002 — cross-domain communication through a non-atomic global)
     or to a captured local / enclosing parameter (P001 — shared
     mutable state escaping into the spawn);
   - a resolved call whose callee transitively writes free state, or
     writes a parameter we're passing a captured target at, is the same
     race one or more hops away — reported at the call site with the
     function chain in the message.

   Writes through [Atomic.t] never appear (the summary's mutator table
   has no atomic operations) and [Mutex.protect]/[with_lock] bodies are
   collected as guarded, so the sanctioned patterns are quiet by
   construction. *)

type context = {
  cx_closure : Summary.closure;
  cx_desc : string;  (* "Domain.spawn at 12:4" / "spawned arg ~f of Pool.map" *)
}

let site_str (s : Summary.site) =
  Printf.sprintf "%d:%d" s.Summary.s_line s.Summary.s_col

(* A target is shared w.r.t. a context iff it was bound before the
   closure's first own binder (captured local or enclosing parameter)
   or is free (global / other module). *)
let captured (cl : Summary.closure) (tg : Summary.target) =
  match tg.Summary.t_binder with
  | None -> true
  | Some id -> id < cl.Summary.cl_first

let target_str (tg : Summary.target) =
  String.concat "." tg.Summary.t_path

let alloc_str (tg : Summary.target) =
  match tg.Summary.t_alloc with
  | Some (k, s) ->
    Printf.sprintf " (%s allocated at %s)" (Summary.alloc_kind_name k)
      (site_str s)
  | None -> ""

(* Enumerate the spawn contexts of one module. *)
let contexts graph (m : Summary.t) =
  let out = ref [] in
  List.iter
    (fun (f : Summary.fn) ->
      let body = f.Summary.fn_body in
      List.iter
        (fun (sp : Summary.spawn) ->
          match sp.Summary.sp_body with
          | Some (Summary.Av_closure cl) ->
            out :=
              {
                cx_closure = cl;
                cx_desc =
                  Printf.sprintf "%s at %s" sp.Summary.sp_head
                    (site_str sp.Summary.sp_site);
              }
              :: !out
          | _ -> ())
        body.Summary.cl_spawns;
      List.iter
        (fun (c : Summary.call) ->
          match Callgraph.resolve graph ~current:m.Summary.m_name c.Summary.c_head with
          | None -> ()
          | Some callee -> (
            match Callgraph.fn_effects graph callee with
            | None -> ()
            | Some fx ->
              List.iter
                (fun k ->
                  match
                    List.find_opt
                      (fun (k', _) -> Summary.arg_key_equal k k')
                      c.Summary.c_args
                  with
                  | Some (_, Summary.Av_closure cl) ->
                    out :=
                      {
                        cx_closure = cl;
                        cx_desc =
                          Printf.sprintf "spawned argument %s of %s at %s"
                            (Summary.arg_key_to_string k)
                            (Callgraph.key callee)
                            (site_str c.Summary.c_site);
                      }
                      :: !out
                  | _ -> ())
                fx.Callgraph.ef_spawned))
        body.Summary.cl_calls)
    m.Summary.m_fns;
  List.rev !out

let raw_of rule (s : Summary.site) msg =
  { Rules.rule; line = s.Summary.s_line; col = s.Summary.s_col; msg }

let classify_write graph ~current cx (w : Summary.write) ~via =
  let tg = w.Summary.w_target in
  let chain = match via with "" -> "" | v -> Printf.sprintf " via %s" v in
  match Callgraph.resolve_global graph ~current tg with
  | Some (owner, g) ->
    Some
      (raw_of Rules.p002 w.Summary.w_site
         (Printf.sprintf
            "%s write to non-atomic global %s.%s (%s declared at %s) from \
             closure spawned by %s%s; cross-domain state must be Atomic or \
             Mutex-guarded"
            w.Summary.w_op owner g.Summary.g_name
            (Summary.alloc_kind_name g.Summary.g_kind)
            (site_str g.Summary.g_site) cx.cx_desc chain))
  | None ->
    Some
      (raw_of Rules.p001 w.Summary.w_site
         (Printf.sprintf
            "unguarded %s to %s%s captured at %s by the closure spawned by \
             %s%s; guard the write with a Mutex or make the state Atomic"
            w.Summary.w_op (target_str tg) (alloc_str tg)
            (site_str cx.cx_closure.Summary.cl_site) cx.cx_desc chain))

let check graph (m : Summary.t) : Rules.raw list =
  let current = m.Summary.m_name in
  let basename = Filename.basename m.Summary.m_path in
  let raws = ref [] in
  let emit = function
    | Some (r : Rules.raw) ->
      if Rules.applies r.Rules.rule m.Summary.m_zone ~basename then
        raws := r :: !raws
    | None -> ()
  in
  List.iter
    (fun cx ->
      let cl = cx.cx_closure in
      (* direct writes of the spawned closure *)
      List.iter
        (fun (w : Summary.write) ->
          if (not w.Summary.w_guarded) && captured cl w.Summary.w_target
          then emit (classify_write graph ~current cx w ~via:""))
        cl.Summary.cl_writes;
      (* races one or more calls away *)
      List.iter
        (fun (c : Summary.call) ->
          match Callgraph.resolve graph ~current c.Summary.c_head with
          | None -> ()
          | Some callee -> (
            match Callgraph.fn_effects graph callee with
            | None -> ()
            | Some fx ->
              List.iter
                (fun (rw : Callgraph.reached_write) ->
                  let w = rw.Callgraph.rw_write in
                  let w = { w with Summary.w_site = c.Summary.c_site } in
                  emit
                    (classify_write graph ~current cx w
                       ~via:rw.Callgraph.rw_via))
                fx.Callgraph.ef_free;
              List.iter
                (fun (k, (rw : Callgraph.reached_write)) ->
                  match
                    List.find_opt
                      (fun (k', _) -> Summary.arg_key_equal k k')
                      c.Summary.c_args
                  with
                  | Some (_, Summary.Av_target tg) when captured cl tg ->
                    let w = rw.Callgraph.rw_write in
                    let w =
                      { w with Summary.w_site = c.Summary.c_site; w_target = tg }
                    in
                    emit
                      (classify_write graph ~current cx w
                         ~via:rw.Callgraph.rw_via)
                  | _ -> ())
                fx.Callgraph.ef_param))
        cl.Summary.cl_calls)
    (contexts graph m);
  (* dedup (flattening can surface the same write in nested contexts)
     and order by position *)
  let uniq =
    List.sort_uniq
      (fun (a : Rules.raw) (b : Rules.raw) ->
        let c = Int.compare a.Rules.line b.Rules.line in
        if c <> 0 then c
        else
          let c = Int.compare a.Rules.col b.Rules.col in
          if c <> 0 then c
          else String.compare a.Rules.rule.Rules.code b.Rules.rule.Rules.code)
      !raws
  in
  uniq
