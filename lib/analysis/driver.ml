type file_result = {
  path : string;
  zone : Zone.t;
  findings : Finding.t list;
  suppressed : int;
}

let parse_impl ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error (String.map (fun c -> if c = '\n' then ' ' else c) msg)

let lint_source ?zone ~path source =
  let zone =
    match zone with Some z -> z | None -> Zone.of_path path
  in
  match parse_impl ~path source with
  | Error e -> Error e
  | Ok str ->
    let basename = Filename.basename path in
    let raws = Rules.check ~zone ~basename str in
    let sup = Suppress.scan source in
    let active, suppressed =
      List.fold_left
        (fun (act, n) (r : Rules.raw) ->
          if Suppress.allowed sup ~line:r.line ~slug:r.rule.Rules.slug then
            (act, n + 1)
          else
            ( {
                Finding.rule = r.rule;
                file = path;
                line = r.line;
                col = r.col;
                msg = r.msg;
              }
              :: act,
              n ))
        ([], 0) raws
    in
    Ok { path; zone; findings = List.rev active; suppressed }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?zone path =
  match read_file path with
  | source -> lint_source ?zone ~path source
  | exception Sys_error e -> Error e

let skip_dirs = [ "_build"; ".git"; "lint_fixtures"; "node_modules" ]

let collect_ml_files roots =
  let out = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      if not (List.mem (Filename.basename path) skip_dirs) then
        Sys.readdir path |> Array.to_list
        |> List.sort String.compare
        |> List.iter (fun entry -> walk (Filename.concat path entry))
    end
    else if Filename.check_suffix path ".ml" then out := path :: !out
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort String.compare !out

type summary = {
  files : int;
  active : int;
  suppressed_total : int;
  results : file_result list;
  errors : (string * string) list;
}

let lint_paths ?zone roots =
  let files = collect_ml_files roots in
  let results, errors =
    List.fold_left
      (fun (rs, es) path ->
        match lint_file ?zone path with
        | Ok r -> (r :: rs, es)
        | Error e -> (rs, (path, e) :: es))
      ([], []) files
  in
  let results = List.rev results and errors = List.rev errors in
  let interesting =
    List.filter (fun r -> r.findings <> [] || r.suppressed > 0) results
  in
  {
    files = List.length files;
    active =
      List.fold_left (fun n r -> n + List.length r.findings) 0 results;
    suppressed_total =
      List.fold_left (fun n r -> n + r.suppressed) 0 results;
    results = interesting;
    errors;
  }

let pp_summary ppf s =
  List.iter
    (fun r ->
      List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.findings)
    s.results;
  List.iter
    (fun (path, e) -> Fmt.pf ppf "%s: parse error: %s@." path e)
    s.errors;
  Fmt.pf ppf "%d file%s checked, %d finding%s, %d suppressed%s@."
    s.files
    (if s.files = 1 then "" else "s")
    s.active
    (if s.active = 1 then "" else "s")
    s.suppressed_total
    (if s.errors = [] then ""
     else Printf.sprintf ", %d parse error(s)" (List.length s.errors))

let json_summary s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"findings\":[";
  let first = ref true in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf (Finding.to_json f))
        r.findings)
    s.results;
  Buffer.add_string buf "],\"errors\":[";
  let first = ref true in
  List.iter
    (fun (path, e) ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":\"%s\",\"msg\":\"%s\"}"
           (Finding.json_escape path) (Finding.json_escape e)))
    s.errors;
  Buffer.add_string buf
    (Printf.sprintf "],\"files\":%d,\"active\":%d,\"suppressed\":%d}"
       s.files s.active s.suppressed_total);
  Buffer.contents buf
