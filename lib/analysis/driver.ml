type file_result = {
  path : string;
  zone : Zone.t;
  findings : Finding.t list;
  suppressed : int;
}

let parse_impl ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error (String.map (fun c -> if c = '\n' then ' ' else c) msg)

(* ------------------------------------------------------------------ *)
(* Suppression filtering + stale-allow (shared by both entry points)   *)
(* ------------------------------------------------------------------ *)

let sort_raws raws =
  List.sort
    (fun (a : Rules.raw) (b : Rules.raw) ->
      let c = Int.compare a.Rules.line b.Rules.line in
      if c <> 0 then c
      else
        let c = Int.compare a.Rules.col b.Rules.col in
        if c <> 0 then c else String.compare a.Rules.rule.Rules.code b.Rules.rule.Rules.code)
    raws

(* Filter [raws] through the file's suppressions, then turn every
   directive that suppressed nothing into an S001 raw and filter those
   the same way (suppressing S001 itself with its own slug works).
   Returns active findings in source order plus the suppressed
   count. *)
let filter_with_stale ~path ~zone ~basename source raws =
  let sup = Suppress.scan source in
  let to_finding (r : Rules.raw) =
    {
      Finding.rule = r.Rules.rule;
      file = path;
      line = r.Rules.line;
      col = r.Rules.col;
      msg = r.Rules.msg;
    }
  in
  let apply raws =
    List.fold_left
      (fun (act, n) (r : Rules.raw) ->
        if Suppress.allowed sup ~line:r.Rules.line ~slug:r.Rules.rule.Rules.slug
        then (act, n + 1)
        else (to_finding r :: act, n))
      ([], 0) raws
  in
  let active, suppressed = apply (sort_raws raws) in
  let stale_raws =
    if Rules.applies Rules.s001 zone ~basename then
      List.map
        (fun (line, slug) ->
          {
            Rules.rule = Rules.s001;
            line;
            col = 0;
            msg =
              Printf.sprintf
                "lint: allow %s suppresses nothing here; remove it or \
                 restore the justification it excused"
                slug;
          })
        (Suppress.stale sup)
    else []
  in
  let stale_active, stale_suppressed = apply stale_raws in
  ( List.rev (stale_active @ active) |> List.sort (fun a b ->
        let c = Int.compare a.Finding.line b.Finding.line in
        if c <> 0 then c
        else
          let c = Int.compare a.Finding.col b.Finding.col in
          if c <> 0 then c
          else String.compare a.Finding.rule.Rules.code b.Finding.rule.Rules.code),
    suppressed + stale_suppressed )

(* Single-source entry point: the whole pipeline on a one-module
   project, so fixture tests exercise the P rules through the same
   code path as a tree lint. *)
let lint_source ?zone ~path source =
  let zone =
    match zone with Some z -> z | None -> Zone.of_path path
  in
  match parse_impl ~path source with
  | Error e -> Error e
  | Ok str ->
    let basename = Filename.basename path in
    let syn = Rules.check ~zone ~basename str in
    let summ = Summary.extract ~path ~zone str in
    let graph = Callgraph.build [ summ ] in
    let inter = Race.check graph summ @ Taint.check summ in
    let findings, suppressed =
      filter_with_stale ~path ~zone ~basename source (syn @ inter)
    in
    Ok { path; zone; findings; suppressed }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?zone path =
  match read_file path with
  | source -> lint_source ?zone ~path source
  | exception Sys_error e -> Error e

let skip_dirs = [ "_build"; ".git"; "lint_fixtures"; "node_modules" ]

let collect_ml_files roots =
  let out = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      if not (List.mem (Filename.basename path) skip_dirs) then
        Sys.readdir path |> Array.to_list
        |> List.sort String.compare
        |> List.iter (fun entry -> walk (Filename.concat path entry))
    end
    else if Filename.check_suffix path ".ml" then out := path :: !out
  in
  List.iter
    (fun root -> if Sys.file_exists root then walk root)
    roots;
  List.sort String.compare !out

(* ------------------------------------------------------------------ *)
(* Summary cache                                                       *)
(* ------------------------------------------------------------------ *)

(* One Marshal'd file for the whole tree: per-path entries keyed by a
   digest of (source, zone).  A version/compiler header guards against
   reading a cache written by different code; any failure to load is a
   cold start, never an error. *)

let cache_magic = "LEOPARD-LINT-CACHE"
let cache_version = 2

type cache_entry = {
  ce_digest : string;
  ce_syn : Rules.raw list;
  ce_summary : Summary.t;
  ce_inter : Rules.raw list option;
      (* None: summary cached but interprocedural raws not yet computed *)
}

let digest_of ~zone source =
  Digest.to_hex (Digest.string (Zone.to_string zone ^ "\x00" ^ source))

let cache_header =
  Printf.sprintf "%s %d %s\n" cache_magic cache_version Sys.ocaml_version

(* The plain-text header is checked before [Marshal.from_string] ever
   runs, so a cache written by a different compiler or cache version is
   discarded without unmarshaling bytes whose layout we cannot trust. *)
let load_cache = function
  | None -> []
  | Some file -> (
    match read_file file with
    | exception Sys_error _ -> []
    | raw ->
      let hn = String.length cache_header in
      if
        String.length raw > hn
        && String.equal (String.sub raw 0 hn) cache_header
      then
        match
          (Marshal.from_string raw hn : (string * cache_entry) list)
        with
        | entries -> entries
        | exception _ -> []
      else [])

let save_cache file entries =
  let payload = Marshal.to_string (entries : (string * cache_entry) list) [] in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc cache_header;
      output_string oc payload);
  Sys.rename tmp file

(* ------------------------------------------------------------------ *)
(* Tree lint                                                           *)
(* ------------------------------------------------------------------ *)

type stage_timings = {
  t_parse : float;  (* read + parse *)
  t_syntactic : float;  (* D/F/E rule pass *)
  t_extract : float;  (* summary extraction *)
  t_graph : float;  (* call graph + fixpoints *)
  t_race : float;  (* P001/P002 *)
  t_taint : float;  (* P003 *)
  t_stale : float;  (* suppression filtering + S001 *)
}

type summary = {
  files : int;
  active : int;
  suppressed_total : int;
  results : file_result list;
  errors : (string * string) list;
  reanalyzed : string list;
  cached : string list;
  timings : stage_timings;
}

(* Per-file working state between the phases. *)
type slot = {
  sl_path : string;
  sl_zone : Zone.t;
  sl_source : string;
  sl_digest : string;
  sl_syn : Rules.raw list;
  sl_summary : Summary.t;
  sl_changed : bool;  (* source/zone digest differs from the cache *)
  sl_cached_inter : Rules.raw list option;
}

let lint_paths ?zone ?cache_file ?(clock = fun () -> 0.) roots =
  let files = collect_ml_files roots in
  let old_cache = load_cache cache_file in
  let tp = ref 0. and ts = ref 0. and tx = ref 0. in
  let timed acc f =
    let t0 = clock () in
    let r = f () in
    acc := !acc +. (clock () -. t0);
    r
  in
  (* phase 1: parse + syntactic rules + summaries, honoring the cache *)
  let slots, errors =
    List.fold_left
      (fun (slots, errors) path ->
        match timed tp (fun () -> read_file path) with
        | exception Sys_error e -> (slots, (path, e) :: errors)
        | source -> (
          let z =
            match zone with Some z -> z | None -> Zone.of_path path
          in
          let digest = digest_of ~zone:z source in
          match List.assoc_opt path old_cache with
          | Some ce when String.equal ce.ce_digest digest ->
            ( {
                sl_path = path;
                sl_zone = z;
                sl_source = source;
                sl_digest = digest;
                sl_syn = ce.ce_syn;
                sl_summary = ce.ce_summary;
                sl_changed = false;
                sl_cached_inter = ce.ce_inter;
              }
              :: slots,
              errors )
          | _ -> (
            match timed tp (fun () -> parse_impl ~path source) with
            | Error e -> (slots, (path, e) :: errors)
            | Ok str ->
              let basename = Filename.basename path in
              let syn =
                timed ts (fun () -> Rules.check ~zone:z ~basename str)
              in
              let summ =
                timed tx (fun () -> Summary.extract ~path ~zone:z str)
              in
              ( {
                  sl_path = path;
                  sl_zone = z;
                  sl_source = source;
                  sl_digest = digest;
                  sl_syn = syn;
                  sl_summary = summ;
                  sl_changed = true;
                  sl_cached_inter = None;
                }
                :: slots,
                errors ))))
      ([], []) files
  in
  let slots = List.rev slots and errors = List.rev errors in
  (* phase 2: call graph over every summary, then interprocedural
     raws for changed modules, their reverse dependencies, and any
     module the cache has no interprocedural raws for *)
  let t0 = clock () in
  let graph = Callgraph.build (List.map (fun s -> s.sl_summary) slots) in
  let t_graph = clock () -. t0 in
  let changed_mods =
    List.filter_map
      (fun s -> if s.sl_changed then Some s.sl_summary.Summary.m_name else None)
      slots
  in
  let dirty = Callgraph.reverse_closure graph changed_mods in
  let needs_inter s =
    s.sl_changed
    || s.sl_cached_inter = None
    || List.mem s.sl_summary.Summary.m_name dirty
  in
  let tr = ref 0. and tt = ref 0. in
  let with_inter =
    List.map
      (fun s ->
        if needs_inter s then
          let race = timed tr (fun () -> Race.check graph s.sl_summary) in
          let taint = timed tt (fun () -> Taint.check s.sl_summary) in
          (s, race @ taint, true)
        else
          (s, Option.value s.sl_cached_inter ~default:[], false))
      slots
  in
  (* phase 3: suppression filtering + S001, always fresh (cheap, needs
     only the source text) *)
  let t0 = clock () in
  let results =
    List.map
      (fun (s, inter, _) ->
        let findings, suppressed =
          filter_with_stale ~path:s.sl_path ~zone:s.sl_zone
            ~basename:(Filename.basename s.sl_path)
            s.sl_source (s.sl_syn @ inter)
        in
        { path = s.sl_path; zone = s.sl_zone; findings; suppressed })
      with_inter
  in
  let t_stale = clock () -. t0 in
  (match cache_file with
  | None -> ()
  | Some file ->
    let entries =
      List.map
        (fun (s, inter, _) ->
          ( s.sl_path,
            {
              ce_digest = s.sl_digest;
              ce_syn = s.sl_syn;
              ce_summary = s.sl_summary;
              ce_inter = Some inter;
            } ))
        with_inter
    in
    (try save_cache file entries with Sys_error _ -> ()));
  let interesting =
    List.filter (fun r -> r.findings <> [] || r.suppressed > 0) results
  in
  let mods_where pred =
    List.filter_map
      (fun (s, _, fresh) ->
        if pred fresh then Some s.sl_summary.Summary.m_name else None)
      with_inter
    |> List.sort_uniq String.compare
  in
  {
    files = List.length files;
    active =
      List.fold_left (fun n r -> n + List.length r.findings) 0 results;
    suppressed_total =
      List.fold_left (fun n r -> n + r.suppressed) 0 results;
    results = interesting;
    errors;
    reanalyzed = mods_where (fun fresh -> fresh);
    cached = mods_where (fun fresh -> not fresh);
    timings =
      {
        t_parse = !tp;
        t_syntactic = !ts;
        t_extract = !tx;
        t_graph;
        t_race = !tr;
        t_taint = !tt;
        t_stale;
      };
  }

let pp_summary ppf s =
  List.iter
    (fun r ->
      List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.findings)
    s.results;
  List.iter
    (fun (path, e) -> Fmt.pf ppf "%s: parse error: %s@." path e)
    s.errors;
  Fmt.pf ppf "%d file%s checked, %d finding%s, %d suppressed%s@."
    s.files
    (if s.files = 1 then "" else "s")
    s.active
    (if s.active = 1 then "" else "s")
    s.suppressed_total
    (if s.errors = [] then ""
     else Printf.sprintf ", %d parse error(s)" (List.length s.errors))

let json_string_list lst =
  "[" ^ String.concat "," (List.map (fun m -> "\"" ^ Finding.json_escape m ^ "\"") lst) ^ "]"

let json_summary s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"findings\":[";
  let first = ref true in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf (Finding.to_json f))
        r.findings)
    s.results;
  Buffer.add_string buf "],\"errors\":[";
  let first = ref true in
  List.iter
    (fun (path, e) ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":\"%s\",\"msg\":\"%s\"}"
           (Finding.json_escape path) (Finding.json_escape e)))
    s.errors;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"files\":%d,\"active\":%d,\"suppressed\":%d,\"reanalyzed\":%s,\"cached\":%s,\"timings\":{\"parse\":%.6f,\"syntactic\":%.6f,\"extract\":%.6f,\"graph\":%.6f,\"race\":%.6f,\"taint\":%.6f,\"stale\":%.6f}}"
       s.files s.active s.suppressed_total
       (json_string_list s.reanalyzed)
       (json_string_list s.cached)
       s.timings.t_parse s.timings.t_syntactic s.timings.t_extract
       s.timings.t_graph s.timings.t_race s.timings.t_taint
       s.timings.t_stale);
  Buffer.contents buf
