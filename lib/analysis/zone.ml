type t =
  | Core
  | Trace_lib
  | Minidb
  | Harness
  | Net
  | Replication
  | Shard
  | Compose
  | Campaign
  | Util
  | Workload
  | Baselines
  | Analysis
  | Bin
  | Bench
  | Examples
  | Test
  | Other

let all =
  [
    Core;
    Trace_lib;
    Minidb;
    Harness;
    Net;
    Replication;
    Shard;
    Compose;
    Campaign;
    Util;
    Workload;
    Baselines;
    Analysis;
    Bin;
    Bench;
    Examples;
    Test;
    Other;
  ]

let to_string = function
  | Core -> "core"
  | Trace_lib -> "trace"
  | Minidb -> "minidb"
  | Harness -> "harness"
  | Net -> "net"
  | Replication -> "replication"
  | Shard -> "shard"
  | Compose -> "compose"
  | Campaign -> "campaign"
  | Util -> "util"
  | Workload -> "workload"
  | Baselines -> "baselines"
  | Analysis -> "analysis"
  | Bin -> "bin"
  | Bench -> "bench"
  | Examples -> "examples"
  | Test -> "test"
  | Other -> "other"

let of_string s =
  List.find_opt (fun z -> String.equal (to_string z) s) all

let lib_zone = function
  | "core" -> Core
  | "trace" -> Trace_lib
  | "minidb" -> Minidb
  | "harness" -> Harness
  | "net" -> Net
  | "replication" -> Replication
  | "shard" -> Shard
  | "compose" -> Compose
  | "campaign" -> Campaign
  | "util" -> Util
  | "workload" -> Workload
  | "baselines" -> Baselines
  | "analysis" -> Analysis
  | _ -> Other

let of_path path =
  let segs =
    String.split_on_char '/' path
    |> List.concat_map (String.split_on_char '\\')
    |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let rec scan = function
    | "lib" :: sub :: _ -> lib_zone sub
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | "examples" :: _ -> Examples
    | "test" :: _ -> Test
    | _ :: rest -> scan rest
    | [] -> Other
  in
  scan segs
