(* SARIF 2.1.0 emitter.

   One run, one driver ("leopard-lint"), the full rule catalogue under
   [tool.driver.rules] (so viewers can show rationale for rules with no
   results this run), one [result] per active finding with a 1-based
   line/column region.  Parse failures surface as tool configuration
   notifications rather than results, mirroring the JSON report's
   separate [errors] array. *)

let esc = Finding.json_escape

let rule_index =
  (* index of a rule code within Rules.all, for [ruleIndex] *)
  let indexed = List.mapi (fun i (r : Rules.t) -> (r.Rules.code, i)) Rules.all in
  fun code ->
    match List.assoc_opt code indexed with Some i -> i | None -> 0

let add_rule buf first (r : Rules.t) =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"id\":\"%s\",\"name\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"error\"},\"properties\":{\"group\":\"%s\"}}"
       (esc r.Rules.code) (esc r.Rules.slug) (esc r.Rules.summary)
       (esc r.Rules.rationale)
       (esc (Rules.group_to_string r.Rules.group)))

let add_result buf first (f : Finding.t) =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
       (esc f.Finding.rule.Rules.code)
       (rule_index f.Finding.rule.Rules.code)
       (esc f.Finding.msg) (esc f.Finding.file) f.Finding.line
       (f.Finding.col + 1))

let add_notification buf first (path, msg) =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf
    (Printf.sprintf
       "{\"level\":\"error\",\"message\":{\"text\":\"parse error: %s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"}}}]}"
       (esc msg) (esc path))

let emit (s : Driver.summary) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"leopard-lint\",\"informationUri\":\"https://example.invalid/leopard-lint\",\"version\":\"2.0.0\",\"rules\":[";
  let first = ref true in
  List.iter (add_rule buf first) Rules.all;
  Buffer.add_string buf "]}},\"results\":[";
  let first = ref true in
  List.iter
    (fun (r : Driver.file_result) ->
      List.iter (add_result buf first) r.Driver.findings)
    s.Driver.results;
  Buffer.add_string buf "]";
  if s.Driver.errors <> [] then begin
    Buffer.add_string buf
      ",\"invocations\":[{\"executionSuccessful\":false,\"toolConfigurationNotifications\":[";
    let first = ref true in
    List.iter (add_notification buf first) s.Driver.errors;
    Buffer.add_string buf "]}]"
  end
  else
    Buffer.add_string buf
      ",\"invocations\":[{\"executionSuccessful\":true}]";
  Buffer.add_string buf "}]}";
  Buffer.contents buf
