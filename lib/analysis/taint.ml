(* P003: seed-taint discipline in the deterministic-sweep zones.

   Campaign cells and composed stacks must be pure functions of their
   cell seed, or serial and parallel sweeps stop being byte-identical.
   The summary records a three-valued taint for every argument —
   [Tseed] provably derives from a seed (an ident or field whose name
   mentions "seed", the result of [Rng.derive]/[Rng.split]/[sub_seed],
   arithmetic over tainted values), [Tplain] provably does not
   (literals, arithmetic over literals), [Topaque] unknown — and this
   pass flags every RNG-construction call whose seed argument is
   [Tplain]: a fresh generator from a hard-coded constant inside a
   sweep silently decouples the cell from its campaign seed.  Opaque
   values never fire (the rule under-approximates rather than make the
   gate noisy); [Random.State.make_self_init] fires unconditionally
   since no argument could justify it. *)

let is_rng_construction (h : Summary.head) =
  match h with
  | Summary.Hparam _ | Summary.Hdyn -> None
  | Summary.Hpath parts -> (
    match Summary.last_two parts with
    | "Rng", "create" -> Some `Seeded
    | "State", ("make" | "make_full") -> Some `Seeded
    | "Random", ("init" | "full_init") -> Some `Seeded
    | "State", "make_self_init" | "Random", "self_init" -> Some `Self_init
    | _ -> None)

let head_str = function
  | Summary.Hpath parts -> String.concat "." parts
  | Summary.Hparam k -> Summary.arg_key_to_string k
  | Summary.Hdyn -> "<closure>"

let taint_of_argv = function
  | Summary.Av_value t -> t
  | Summary.Av_target tg -> tg.Summary.t_taint
  | Summary.Av_closure _ -> Summary.Topaque

let raw_of rule (s : Summary.site) msg =
  { Rules.rule; line = s.Summary.s_line; col = s.Summary.s_col; msg }

let check (m : Summary.t) : Rules.raw list =
  let basename = Filename.basename m.Summary.m_path in
  if not (Rules.applies Rules.p003 m.Summary.m_zone ~basename) then []
  else begin
    let raws = ref [] in
    List.iter
      (fun (f : Summary.fn) ->
        List.iter
          (fun (c : Summary.call) ->
            match is_rng_construction c.Summary.c_head with
            | None -> ()
            | Some `Self_init ->
              raws :=
                raw_of Rules.p003 c.Summary.c_site
                  (Printf.sprintf
                     "%s in a seeded sweep zone; every generator must \
                      derive from the campaign seed via Rng.derive"
                     (head_str c.Summary.c_head))
                :: !raws
            | Some `Seeded -> (
              match
                List.find_opt
                  (fun (k, _) -> Summary.arg_key_equal k (Summary.Kpos 0))
                  c.Summary.c_args
              with
              | Some (_, av) when taint_of_argv av = Summary.Tplain ->
                raws :=
                  raw_of Rules.p003 c.Summary.c_site
                    (Printf.sprintf
                       "%s seeded from a value that does not derive from \
                        the campaign seed; use Rng.derive (or thread the \
                        cell seed) so sweeps replay byte-identically"
                       (head_str c.Summary.c_head))
                  :: !raws
              | _ -> ()))
          f.Summary.fn_body.Summary.cl_calls)
      m.Summary.m_fns;
    List.sort_uniq
      (fun (a : Rules.raw) (b : Rules.raw) ->
        let c = Int.compare a.Rules.line b.Rules.line in
        if c <> 0 then c else Int.compare a.Rules.col b.Rules.col)
      !raws
  end
