(* Cross-module call graph over per-module summaries, plus the two
   interprocedural fixpoints the P rules need:

   - {e effects}: for every top-level function, the unguarded writes it
     performs transitively — split into writes to free/global state and
     writes to its own parameters (keyed by argument position so a call
     site can map them back onto the actual argument);
   - {e spawned parameters}: the parameters whose value ends up as the
     body of a [Domain.spawn] — directly, through a worker closure that
     calls the parameter, or through a call that forwards the parameter
     into another function's spawned position.  A closure passed at a
     spawned parameter runs on another domain, so [Pool.map]'s [f] is a
     spawn context even though no caller ever writes [Domain.spawn].

   Resolution is purely syntactic: a call head resolves into the
   project iff one of its path components names a known module (a
   capitalized source basename) that defines the final component as a
   top-level function.  Unresolvable heads (stdlib, functor-generated,
   dynamic) contribute no edges — the analysis under-approximates
   through them and the rules say so in their rationale. *)

type fn_id = { f_module : string; f_fn : string }

(* One transitively-reached unguarded write: the syntactic write, the
   function chain that reaches it ("Pool.map -> Obs.bump"), and the
   owning global when the target resolves to one. *)
type reached_write = {
  rw_write : Summary.write;
  rw_via : string;
  rw_global : (string * Summary.global) option;
}

type effects = {
  mutable ef_free : reached_write list;
  mutable ef_param : (Summary.arg_key * reached_write) list;
  mutable ef_spawned : Summary.arg_key list;
}

type t = {
  modules : (string * Summary.t) list;  (* sorted by module name *)
  fn_index : (string, Summary.fn) Hashtbl.t;  (* "Mod.fn" -> fn *)
  global_index : (string, Summary.global) Hashtbl.t;  (* "Mod.g" *)
  fx : (string, effects) Hashtbl.t;  (* "Mod.fn" -> effects *)
  mutable deps : (string * string list) list;  (* sorted adjacency *)
}

let key id = id.f_module ^ "." ^ id.f_fn

let find_fn t id = Hashtbl.find_opt t.fn_index (key id)

let find_global t ~m ~name = Hashtbl.find_opt t.global_index (m ^ "." ^ name)

let fn_effects t id = Hashtbl.find_opt t.fx (key id)

(* Resolve a call head in the context of [current].  Unqualified names
   resolve in the current module; qualified paths scan right-to-left
   for a component naming a known module that defines the last
   component (so [Leopard_campaign.Pool.map] resolves through [Pool]
   even though the wrapping library module is not a source file). *)
let resolve t ~current (h : Summary.head) =
  match h with
  | Summary.Hparam _ | Summary.Hdyn -> None
  | Summary.Hpath [] -> None
  | Summary.Hpath [ name ] ->
    let id = { f_module = current; f_fn = name } in
    if Hashtbl.mem t.fn_index (key id) then Some id else None
  | Summary.Hpath parts ->
    let fn =
      match List.rev parts with f :: _ -> f | [] -> assert false
    in
    let mods = match List.rev parts with _ :: ms -> ms | [] -> [] in
    let rec scan = function
      | [] -> None
      | m :: rest ->
        let id = { f_module = m; f_fn = fn } in
        if Hashtbl.mem t.fn_index (key id) then Some id else scan rest
    in
    scan mods

(* Resolve a write target to its owning module-level global, if any.
   Unqualified names qualify when they are free (no binder) or when the
   summary marked them module-level ([t_global]). *)
let resolve_global t ~current (tg : Summary.target) =
  match tg.Summary.t_path with
  | [ name ] when tg.Summary.t_binder = None || tg.Summary.t_global -> (
    match find_global t ~m:current ~name with
    | Some g -> Some (current, g)
    | None -> None)
  | parts -> (
    match List.rev parts with
    | name :: mods ->
      let rec scan = function
        | [] -> None
        | m :: rest -> (
          match find_global t ~m ~name with
          | Some g -> Some (m, g)
          | None -> scan rest)
      in
      scan mods
    | [] -> None)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let shared_free (tg : Summary.target) =
  (* Inside a top-level function body, a target without a binder is
     free: a module global, an [open]ed name, or another module's
     state.  Module-level bindings carry a binder id too, so [t_global]
     marks them shared.  Locals (binder, no param, not global) are
     per-call and private. *)
  (tg.Summary.t_binder = None || tg.Summary.t_global)
  && tg.Summary.t_param = None

let rw_mem lst (rw : reached_write) =
  List.exists
    (fun r ->
      r.rw_write.Summary.w_site = rw.rw_write.Summary.w_site
      && String.equal r.rw_write.Summary.w_op rw.rw_write.Summary.w_op)
    lst

let param_mem lst k (rw : reached_write) =
  List.exists
    (fun (k', r) ->
      Summary.arg_key_equal k k'
      && r.rw_write.Summary.w_site = rw.rw_write.Summary.w_site
      && String.equal r.rw_write.Summary.w_op rw.rw_write.Summary.w_op)
    lst

let argv_taints_closure_calling (cl : Summary.closure) k =
  List.exists
    (fun (c : Summary.call) ->
      match c.Summary.c_head with
      | Summary.Hparam k' -> Summary.arg_key_equal k k'
      | _ -> false)
    cl.Summary.cl_calls

let build (summaries : Summary.t list) =
  let modules =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun (s : Summary.t) -> (s.Summary.m_name, s)) summaries)
  in
  let fn_index = Hashtbl.create 256 in
  let global_index = Hashtbl.create 64 in
  let fx = Hashtbl.create 256 in
  List.iter
    (fun (m, (s : Summary.t)) ->
      List.iter
        (fun (f : Summary.fn) ->
          let k = m ^ "." ^ f.Summary.fn_name in
          if not (Hashtbl.mem fn_index k) then Hashtbl.add fn_index k f;
          Hashtbl.replace fx k
            { ef_free = []; ef_param = []; ef_spawned = [] })
        s.Summary.m_fns;
      List.iter
        (fun (g : Summary.global) ->
          Hashtbl.replace global_index (m ^ "." ^ g.Summary.g_name) g)
        s.Summary.m_globals)
    modules;
  let t = { modules; fn_index; global_index; fx; deps = [] } in

  (* --- seed direct effects ---------------------------------------- *)
  List.iter
    (fun (m, (s : Summary.t)) ->
      List.iter
        (fun (f : Summary.fn) ->
          let id = { f_module = m; f_fn = f.Summary.fn_name } in
          match fn_effects t id with
          | None -> ()
          | Some e ->
            let via = key id in
            List.iter
              (fun (w : Summary.write) ->
                if not w.Summary.w_guarded then begin
                  let tg = w.Summary.w_target in
                  if shared_free tg then begin
                    let rw =
                      {
                        rw_write = w;
                        rw_via = via;
                        rw_global = resolve_global t ~current:m tg;
                      }
                    in
                    if not (rw_mem e.ef_free rw) then
                      e.ef_free <- rw :: e.ef_free
                  end
                  else
                    match tg.Summary.t_param with
                    | Some k ->
                      let rw =
                        { rw_write = w; rw_via = via; rw_global = None }
                      in
                      if not (param_mem e.ef_param k rw) then
                        e.ef_param <- (k, rw) :: e.ef_param
                    | None -> ()
                end)
              f.Summary.fn_body.Summary.cl_writes;
            (* direct spawned params: [Domain.spawn f] where [f] is a
               parameter, or a spawn whose worker closure calls one *)
            List.iter
              (fun (sp : Summary.spawn) ->
                match sp.Summary.sp_body with
                | Some (Summary.Av_target tg) -> (
                  match tg.Summary.t_param with
                  | Some k ->
                    if
                      not
                        (List.exists (Summary.arg_key_equal k) e.ef_spawned)
                    then e.ef_spawned <- k :: e.ef_spawned
                  | None -> ())
                | Some (Summary.Av_closure cl) ->
                  List.iter
                    (fun (k, _) ->
                      if
                        argv_taints_closure_calling cl k
                        && not
                             (List.exists (Summary.arg_key_equal k)
                                e.ef_spawned)
                      then e.ef_spawned <- k :: e.ef_spawned)
                    f.Summary.fn_params
                | _ -> ())
              f.Summary.fn_body.Summary.cl_spawns)
        s.Summary.m_fns)
    modules;

  (* --- fixpoint: propagate through resolved calls ------------------ *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun (m, (s : Summary.t)) ->
        List.iter
          (fun (f : Summary.fn) ->
            let id = { f_module = m; f_fn = f.Summary.fn_name } in
            match fn_effects t id with
            | None -> ()
            | Some e ->
              List.iter
                (fun (c : Summary.call) ->
                  match resolve t ~current:m c.Summary.c_head with
                  | None -> ()
                  | Some callee_id -> (
                    match fn_effects t callee_id with
                    | None -> ()
                    | Some ce ->
                      (* free writes in the callee are free here too *)
                      List.iter
                        (fun rw ->
                          let rw =
                            { rw with rw_via = key id ^ " -> " ^ rw.rw_via }
                          in
                          if not (rw_mem e.ef_free rw) then begin
                            e.ef_free <- rw :: e.ef_free;
                            changed := true
                          end)
                        ce.ef_free;
                      (* callee param writes land on our arguments *)
                      List.iter
                        (fun (k, rw) ->
                          match
                            List.find_opt
                              (fun (k', _) -> Summary.arg_key_equal k k')
                              c.Summary.c_args
                          with
                          | Some (_, Summary.Av_target tg) ->
                            let rw =
                              {
                                rw with
                                rw_via = key id ^ " -> " ^ rw.rw_via;
                                rw_global = resolve_global t ~current:m tg;
                              }
                            in
                            if shared_free tg then begin
                              if not (rw_mem e.ef_free rw) then begin
                                e.ef_free <- rw :: e.ef_free;
                                changed := true
                              end
                            end
                            else (
                              match tg.Summary.t_param with
                              | Some j ->
                                if not (param_mem e.ef_param j rw) then begin
                                  e.ef_param <- (j, rw) :: e.ef_param;
                                  changed := true
                                end
                              | None -> ())
                          | _ -> ())
                        ce.ef_param;
                      (* forwarding a param into a spawned position
                         makes our param spawned as well *)
                      List.iter
                        (fun k ->
                          match
                            List.find_opt
                              (fun (k', _) -> Summary.arg_key_equal k k')
                              c.Summary.c_args
                          with
                          | Some
                              ( _,
                                Summary.Av_target
                                  { Summary.t_param = Some j; _ } ) ->
                            if
                              not
                                (List.exists (Summary.arg_key_equal j)
                                   e.ef_spawned)
                            then begin
                              e.ef_spawned <- j :: e.ef_spawned;
                              changed := true
                            end
                          | _ -> ())
                        ce.ef_spawned))
                f.Summary.fn_body.Summary.cl_calls)
          s.Summary.m_fns)
      modules
  done;

  (* --- module dependency edges ------------------------------------- *)
  let dep_tbl = Hashtbl.create 64 in
  let add_dep m m' =
    if not (String.equal m m') then begin
      let cur =
        match Hashtbl.find_opt dep_tbl m with Some l -> l | None -> []
      in
      if not (List.mem m' cur) then Hashtbl.replace dep_tbl m (m' :: cur)
    end
  in
  List.iter
    (fun (m, (s : Summary.t)) ->
      List.iter
        (fun (f : Summary.fn) ->
          List.iter
            (fun (c : Summary.call) ->
              match resolve t ~current:m c.Summary.c_head with
              | Some id -> add_dep m id.f_module
              | None -> ())
            f.Summary.fn_body.Summary.cl_calls;
          List.iter
            (fun (w : Summary.write) ->
              match
                resolve_global t ~current:m w.Summary.w_target
              with
              | Some (owner, _) -> add_dep m owner
              | None -> ())
            f.Summary.fn_body.Summary.cl_writes)
        s.Summary.m_fns)
    modules;
  t.deps <-
    List.map
      (fun (m, _) ->
        let ds =
          match Hashtbl.find_opt dep_tbl m with
          | Some l -> List.sort String.compare l
          | None -> []
        in
        (m, ds))
      modules;
  t

let module_deps t = t.deps

(* Modules that (transitively) depend on any of [seeds]: the set whose
   interprocedural findings may change when [seeds] change. *)
let reverse_closure t seeds =
  let rdeps = Hashtbl.create 64 in
  List.iter
    (fun (m, ds) ->
      List.iter
        (fun d ->
          let cur =
            match Hashtbl.find_opt rdeps d with Some l -> l | None -> []
          in
          Hashtbl.replace rdeps d (m :: cur))
        ds)
    t.deps;
  let seen = Hashtbl.create 64 in
  let rec go m =
    if not (Hashtbl.mem seen m) then begin
      Hashtbl.replace seen m ();
      match Hashtbl.find_opt rdeps m with
      | Some preds -> List.iter go preds
      | None -> ()
    end
  in
  List.iter go seeds;
  let out =
    List.filter_map
      (fun (m, _) -> if Hashtbl.mem seen m then Some m else None)
      t.deps
  in
  out
