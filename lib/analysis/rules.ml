type group = Determinism | Fault_plane | Exhaustiveness | Parallelism | Hygiene

let group_to_string = function
  | Determinism -> "determinism"
  | Fault_plane -> "fault-plane"
  | Exhaustiveness -> "exhaustiveness"
  | Parallelism -> "parallelism"
  | Hygiene -> "hygiene"

type t = {
  code : string;
  slug : string;
  group : group;
  summary : string;
  rationale : string;
}

let d001 =
  {
    code = "D001";
    slug = "random-global";
    group = Determinism;
    summary = "global Random module referenced outside lib/util";
    rationale =
      "every run must replay byte-identically from its seed; all \
       randomness flows through the splittable seeded Rng";
  }

let d002 =
  {
    code = "D002";
    slug = "wall-clock";
    group = Determinism;
    summary = "wall-clock read outside the declared clock module";
    rationale =
      "Unix.time/gettimeofday/Sys.time in the data path would leak \
       host timing into traces and verdicts; reporting-only timing \
       goes through Util.Clock";
  }

let d003 =
  {
    code = "D003";
    slug = "hashtbl-order";
    group = Determinism;
    summary = "Hashtbl iteration whose order may escape";
    rationale =
      "Hashtbl.iter/fold order depends on insertion history; results \
       reaching traces, verdicts or reports must be sorted (the call \
       is absolved when it sits directly under a sort)";
  }

let d004 =
  {
    code = "D004";
    slug = "poly-compare";
    group = Determinism;
    summary = "polymorphic compare or Hashtbl.hash";
    rationale =
      "polymorphic compare on types that grow functions, maps or \
       cyclic parts raises or diverges at runtime; use the type's own \
       compare (Int.compare, String.compare, Cell.compare, ...)";
  }

let f001 =
  {
    code = "F001";
    slug = "fault-plane";
    group = Fault_plane;
    summary = "verdict path references fault machinery";
    rationale =
      "lib/core and lib/trace decide verdicts; if they can even name \
       Chaos/Faulty_link/Fault/Wal, a refactor could route injection \
       through the checker and silently bias the verdict";
  }

let f002 =
  {
    code = "F002";
    slug = "fault-construct";
    group = Fault_plane;
    summary = "fault constructor built outside harness/test code";
    rationale =
      "engine hot paths may consult the injected fault set (membership \
       tests are absolved) but never construct fault values: injection \
       decisions belong to the harness";
  }

let f003 =
  {
    code = "F003";
    slug = "exit-in-lib";
    group = Fault_plane;
    summary = "exit called from library code";
    rationale =
      "the verdict-to-exit-code mapping (0 verified / 1 violation / 3 \
       inconclusive / 2 usage) lives in bin; a library exit could die \
       with the wrong soundness class";
  }

let e001 =
  {
    code = "E001";
    slug = "verdict-wildcard";
    group = Exhaustiveness;
    summary = "wildcard in a match over Checker.verdict";
    rationale =
      "a catch-all arm would absorb a future verdict variant and could \
       silently downgrade a Violation";
  }

let e002 =
  {
    code = "E002";
    slug = "abort-wildcard";
    group = Exhaustiveness;
    summary = "wildcard in a match over abort reasons";
    rationale =
      "retry/ambiguity policy is per abort reason; a catch-all would \
       silently misclassify a future reason (e.g. retrying a \
       non-retryable abort)";
  }

let e003 =
  {
    code = "E003";
    slug = "tag-wildcard";
    group = Exhaustiveness;
    summary = "wildcard in a match over codec/operation tags";
    rationale =
      "codec entries and operation tags gate what reaches the checker; \
       a catch-all would silently drop a future marker kind instead of \
       failing the build";
  }

let p001 =
  {
    code = "P001";
    slug = "spawn-capture";
    group = Parallelism;
    summary =
      "shared mutable state written from a spawned closure without a guard";
    rationale =
      "a ref/array/Hashtbl captured by a closure handed to Domain.spawn \
       (or passed at a parameter the call graph proves spawned, like \
       Pool.map's f) and written without Atomic/Mutex is a data race; \
       the interprocedural summaries follow the capture through helper \
       calls across modules";
  }

let p002 =
  {
    code = "P002";
    slug = "nonatomic-global";
    group = Parallelism;
    summary = "cross-domain communication through a non-atomic global";
    rationale =
      "a module-level ref/Hashtbl written from a spawned closure is \
       shared between domains by construction; cross-domain state must \
       be an Atomic.t or every write must sit under Mutex.protect";
  }

let p003 =
  {
    code = "P003";
    slug = "underived-seed";
    group = Parallelism;
    summary = "RNG constructed from a value that does not derive from the seed";
    rationale =
      "campaign and compose cells must be pure functions of their cell \
       seed or serial and parallel sweeps stop being byte-identical; \
       every generator in those zones derives via Rng.derive from the \
       campaign seed, never from a fresh constant";
  }

let s001 =
  {
    code = "S001";
    slug = "stale-allow";
    group = Hygiene;
    summary = "a suppression annotation that suppresses nothing";
    rationale =
      "a suppression that no finding matches is a justification that \
       rotted — the code it excused was fixed or moved — and leaving it \
       in place would silently excuse a future regression at that line";
  }

let all =
  [ d001; d002; d003; d004; f001; f002; f003; e001; e002; e003; p001; p002; p003; s001 ]

let find_slug slug = List.find_opt (fun r -> String.equal r.slug slug) all

type raw = { rule : t; line : int; col : int; msg : string }

(* ------------------------------------------------------------------ *)
(* Rule applicability by zone                                          *)
(* ------------------------------------------------------------------ *)

let lib_zones : Zone.t list =
  [
    Core;
    Trace_lib;
    Minidb;
    Harness;
    Net;
    Replication;
    Shard;
    Compose;
    Campaign;
    Util;
    Workload;
    Baselines;
    Analysis;
  ]

let mem_zone (z : Zone.t) zs = List.exists (fun z' -> z' = z) zs

let applies rule (zone : Zone.t) ~basename =
  match rule.code with
  | "D001" -> zone <> Zone.Util
  | "D002" -> not (zone = Zone.Util && String.equal basename "clock.ml")
  | "D003" ->
    mem_zone zone
      [
        Core; Trace_lib; Minidb; Harness; Net; Replication; Shard; Compose;
        Campaign; Analysis;
      ]
  | "D004" -> mem_zone zone lib_zones
  | "F001" -> mem_zone zone [ Core; Trace_lib ]
  (* Core is covered by F001 (it may not reference fault modules at
     all); its own anomaly taxonomy reuses names like Dirty_read, so
     matching bare constructor names there would misfire. *)
  | "F002" ->
    mem_zone zone
      [ Trace_lib; Minidb; Net; Replication; Shard; Compose; Analysis ]
    && not
         (List.mem basename
            [ "fault.ml"; "wal.ml"; "repl_fault.ml"; "shard_fault.ml" ])
  | "F003" -> mem_zone zone lib_zones
  | "E001" | "E002" | "E003" -> zone <> Zone.Test
  (* The race rules run wherever domains can be spawned: all library
     zones plus executables and the bench driver.  Examples are demo
     code but still ship spawnable patterns, so they are held too. *)
  | "P001" | "P002" ->
    mem_zone zone lib_zones || mem_zone zone [ Bin; Bench; Examples ]
  (* Seed-taint applies only where cell purity is the contract. *)
  | "P003" -> mem_zone zone [ Campaign; Compose ]
  | "S001" -> true
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec lid_parts (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> lid_parts l @ [ s ]
  | Lapply (a, b) -> lid_parts a @ lid_parts b

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let last_part parts =
  match List.rev parts with [] -> "" | x :: _ -> x

(* ------------------------------------------------------------------ *)
(* Variant families for the E rules                                    *)
(* ------------------------------------------------------------------ *)

type family = { fam_name : string; fam_rule : t; members : string list }

let verdict_family =
  {
    fam_name = "Checker.verdict";
    fam_rule = e001;
    members = [ "Verified"; "Violation"; "Inconclusive" ];
  }

let abort_family =
  {
    fam_name = "Engine.abort_reason";
    fam_rule = e002;
    members =
      [
        "Deadlock_victim";
        "Fuw_conflict";
        "Certifier_conflict";
        "User_abort";
        "Server_crash";
      ];
  }

let entry_family =
  {
    fam_name = "Codec.entry";
    fam_rule = e003;
    members = [ "Trace"; "Epoch"; "Ambiguous"; "Leader"; "Shard"; "Prepare" ];
  }

let tag_family =
  {
    fam_name = "operation tag";
    fam_rule = e003;
    members = [ "Read"; "Write"; "Commit"; "Abort"; "Begin" ];
  }

let repl_family =
  {
    fam_name = "Wire.repl_msg";
    fam_rule = e003;
    members = [ "Repl_append"; "Repl_ack" ];
  }

(* The 2PC commit protocol: a wildcard over its messages would let a
   future message kind (say, a read-only vote optimization) silently
   fall into a drop-it arm instead of failing the build. *)
let tpc_family =
  {
    fam_name = "Wire.tpc_msg";
    fam_rule = e003;
    members =
      [ "Tpc_prepare"; "Tpc_vote"; "Tpc_decision"; "Tpc_abort"; "Tpc_ack" ];
  }

(* A campaign cell's terminal state: crash isolation and step budgets
   added Crashed and Timeout next to Completed, and a wildcard here
   would silently misfile a future terminal state (say, Cancelled)
   instead of failing the build. *)
let outcome_family =
  {
    fam_name = "Runner.outcome";
    fam_rule = e001;
    members = [ "Completed"; "Crashed"; "Timeout" ];
  }

let families =
  [
    verdict_family;
    outcome_family;
    abort_family;
    entry_family;
    tag_family;
    repl_family;
    tpc_family;
  ]

(* Constructors whose argument is itself a registered family: a
   wildcard argument of [Err]/[Refused] absorbs every abort reason. *)
let arg_families = [ ("Err", abort_family); ("Refused", abort_family) ]

(* Fault constructors (Minidb.Fault.t and Minidb.Wal.fault): building
   one of these outside the harness is an F002 finding. *)
let fault_ctors =
  [
    "No_lock_on_noop_update";
    "Stale_read";
    "Predicate_read_ignores_locks";
    "Read_two_versions";
    "No_fuw";
    "No_ssi";
    "Dirty_read";
    "Stmt_snapshot_under_txn_cr";
    "Early_lock_release";
    "Snapshot_reset_on_write";
    "Mvto_no_check";
    "Ignore_own_writes";
    "Version_order_inversion";
    "Read_aborted_version";
    "Partial_commit";
    "Delayed_visibility";
    "Shared_lock_ignores_exclusive";
    "Torn_tail";
    "Lost_fsync";
    "Reordered_flush";
    "Dup_replay";
    (* Repl_fault.t: the replication fault plane *)
    "Promote_lagging";
    "Lose_acked_window";
    "Stale_follower_read";
    "Split_brain";
    (* Shard_fault.t: the sharding/2PC fault plane *)
    "Fractured_commit";
    "Commit_after_abort";
    "Snapshot_skew";
    "Stale_prepared_read";
  ]

let fault_modules =
  [
    "Chaos";
    "Faulty_link";
    "Fault";
    "Wal";
    "Recovery";
    "Minidb";
    "Leopard_harness";
    "Leopard_net";
    "Repl_fault";
    "Cluster";
    "Follower";
    "Leopard_replication";
    "Shard_fault";
    "Group";
    "Participant";
    "Leopard_shard";
    (* the stacked-plane composition orchestrator *)
    "Stack";
    "Leopard_compose";
  ]

(* ------------------------------------------------------------------ *)
(* The checker proper                                                  *)
(* ------------------------------------------------------------------ *)

open Parsetree

type state = {
  zone : Zone.t;
  basename : string;
  mutable found : raw list;
  (* positions (pos_cnum of the ident/constructor) absolved by an
     enclosing sort or fault-set membership test *)
  absolved : (int, unit) Hashtbl.t;
}

let loc_line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let report st rule (loc : Location.t) msg =
  if applies rule st.zone ~basename:st.basename then begin
    let line, col = loc_line_col loc in
    st.found <- { rule; line; col; msg } :: st.found
  end

let absolve st (loc : Location.t) = Hashtbl.replace st.absolved loc.loc_start.pos_cnum ()

let is_absolved st (loc : Location.t) = Hashtbl.mem st.absolved loc.loc_start.pos_cnum

(* --- D/F ident and constructor classification --------------------- *)

let is_hashtbl_iteration parts =
  match List.rev parts with
  | ("iter" | "fold") :: prev :: _ -> prev = "Hashtbl" || prev = "Tbl"
  | _ -> false

let is_sort_head parts =
  match last_part parts with
  | "sort" | "sort_uniq" | "stable_sort" | "fast_sort" -> true
  | _ -> false

(* [lying] is the shard group's membership test over its planted-fault
   list, like [has_fault] for the other planes. *)
let is_membership_head parts =
  match last_part parts with
  | "mem" | "fault" | "has_fault" | "lying" -> true
  | _ -> false

let check_ident st (loc : Location.t) parts =
  let parts = strip_stdlib parts in
  (match parts with
  | "Random" :: _ ->
    report st d001 loc
      (Printf.sprintf "reference to global Random (%s); use the seeded Rng"
         (String.concat "." parts))
  | _ -> ());
  (match parts with
  | [ "Unix"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Sys"; "time" ] ->
    report st d002 loc
      (Printf.sprintf "wall-clock read %s; use Util.Clock"
         (String.concat "." parts))
  (* In the campaign zone even the sanctioned reporting clock is out:
     a cell's outcome must be a pure function of the cell, or serial
     and parallel sweeps stop being byte-identical. *)
  | [ "Clock"; "wall" ]
  | [ "Util"; "Clock"; "wall" ]
  | [ "Leopard_util"; "Clock"; "wall" ]
    when st.zone = Zone.Campaign ->
    report st d002 loc
      "wall-clock read inside a campaign cell body; cell outcomes must be \
       pure functions of the cell"
  | _ -> ());
  if is_hashtbl_iteration parts && not (is_absolved st loc) then
    report st d003 loc
      (Printf.sprintf
         "%s iterates in hash order; sort the bindings (or justify with a \
          suppression)"
         (String.concat "." parts));
  (match parts with
  | [ "compare" ] ->
    report st d004 loc
      "polymorphic compare; use the element type's compare"
  | [ "Hashtbl"; "hash" ] ->
    report st d004 loc
      "polymorphic Hashtbl.hash; derive a structural hash from typed fields"
  | _ -> ());
  (match parts with
  | [ "exit" ] ->
    report st f003 loc "exit from library code; return a result and let bin decide"
  | _ -> ());
  match parts with
  | m :: _ when List.mem m fault_modules ->
    report st f001 loc
      (Printf.sprintf "verdict path references fault machinery (%s)"
         (String.concat "." parts))
  | _ -> ()

let check_construct st (loc : Location.t) parts =
  let name = last_part parts in
  (match parts with
  | m :: _ :: _ when List.mem m fault_modules ->
    report st f001 loc
      (Printf.sprintf "verdict path references fault machinery (%s)"
         (String.concat "." parts))
  | _ -> ());
  if List.mem name fault_ctors && not (is_absolved st loc) then
    report st f002 loc
      (Printf.sprintf
         "fault constructor %s built here; fault injection belongs to the \
          harness (membership tests are absolved)"
         name)

(* --- absolution pre-passes ---------------------------------------- *)

(* Mark Hashtbl.iter/fold idents appearing anywhere under [e]: they are
   arguments of a sort, so their order cannot escape. *)
let rec absolve_hashtbl_under st e =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } ->
    if is_hashtbl_iteration (strip_stdlib (lid_parts txt)) then absolve st loc
  | Pexp_apply (f, args) ->
    absolve_hashtbl_under st f;
    List.iter (fun (_, a) -> absolve_hashtbl_under st a) args
  | Pexp_fun (_, _, _, body) -> absolve_hashtbl_under st body
  | _ -> ()

(* Mark fault constructors appearing directly under a membership test
   ([Fault.Set.mem], [fault t C], [has_fault t C]). *)
let rec absolve_faults_under st e =
  match e.pexp_desc with
  | Pexp_construct ({ loc; txt }, arg) ->
    if List.mem (last_part (lid_parts txt)) fault_ctors then absolve st loc;
    Option.iter (absolve_faults_under st) arg
  | Pexp_apply (f, args) ->
    absolve_faults_under st f;
    List.iter (fun (_, a) -> absolve_faults_under st a) args
  | _ -> ()

(* --- E rules: wildcard coverage of variant families ---------------- *)

(* A path is the chain of constructor names / tuple slots / record
   fields from the scrutinee down to a pattern node; a wildcard at path
   [p] can absorb family constructors observed at any path extending
   [p]. *)
type wild = { w_path : string list; w_any : bool; w_loc : Location.t }

let rec walk_pattern ~path pat ~obs ~wilds =
  match pat.ppat_desc with
  | Ppat_any -> wilds := { w_path = path; w_any = true; w_loc = pat.ppat_loc } :: !wilds
  | Ppat_var _ ->
    wilds := { w_path = path; w_any = false; w_loc = pat.ppat_loc } :: !wilds
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
    walk_pattern ~path p ~obs ~wilds
  | Ppat_or (a, b) ->
    walk_pattern ~path a ~obs ~wilds;
    walk_pattern ~path b ~obs ~wilds
  | Ppat_construct ({ txt; _ }, arg) ->
    let name = last_part (lid_parts txt) in
    List.iter
      (fun fam -> if List.mem name fam.members then obs := (fam, path) :: !obs)
      families;
    (match List.assoc_opt name arg_families with
    | Some fam -> obs := (fam, path @ [ name ]) :: !obs
    | None -> ());
    (match arg with
    | None -> ()
    | Some (_, p) -> walk_pattern ~path:(path @ [ name ]) p ~obs ~wilds)
  | Ppat_tuple ps ->
    List.iteri
      (fun i p -> walk_pattern ~path:(path @ [ "#" ^ string_of_int i ]) p ~obs ~wilds)
      ps
  | Ppat_record (fields, _) ->
    List.iter
      (fun (lid, p) ->
        let f = last_part (lid_parts lid.Location.txt) in
        walk_pattern ~path:(path @ [ "." ^ f ]) p ~obs ~wilds)
      fields
  | Ppat_array ps -> List.iter (fun p -> walk_pattern ~path p ~obs ~wilds) ps
  | Ppat_lazy p -> walk_pattern ~path p ~obs ~wilds
  | Ppat_exception _ -> ()
  | _ -> ()

let rec is_prefix short long =
  match (short, long) with
  | [], _ -> true
  | s :: ss, l :: ls when String.equal s l -> is_prefix ss ls
  | _ -> false

let check_cases st (cases : case list) =
  let obs = ref [] and wilds = ref [] in
  List.iter (fun c -> walk_pattern ~path:[] c.pc_lhs ~obs ~wilds) cases;
  (* A var pattern is only a catch-all at the scrutinee root; deeper
     down it is an ordinary argument binder ([Err reason] forwards the
     reason, [Inconclusive why] binds a string). An [_] absorbs at its
     own path and below. *)
  let covering w (_, p) =
    if w.w_any then is_prefix w.w_path p else w.w_path = [] in
  let seen = ref [] in
  List.iter
    (fun w ->
      List.iter
        (fun ((fam, _) as o) ->
          if covering w o then begin
            let key = (fam.fam_rule.code, w.w_loc.loc_start.pos_cnum) in
            if not (List.mem key !seen) then begin
              seen := key :: !seen;
              report st fam.fam_rule w.w_loc
                (Printf.sprintf
                   "catch-all pattern can absorb a future %s variant; spell \
                    the arms out"
                   fam.fam_name)
            end
          end)
        !obs)
    (List.rev !wilds)

(* ------------------------------------------------------------------ *)
(* Iterator assembly                                                   *)
(* ------------------------------------------------------------------ *)

let is_sort_expr e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> is_sort_head (strip_stdlib (lid_parts txt))
  | Pexp_apply (f, _) -> (
    match f.pexp_desc with
    | Pexp_ident { txt; _ } -> is_sort_head (strip_stdlib (lid_parts txt))
    | _ -> false)
  | _ -> false

let check ~zone ~basename (str : structure) =
  let st = { zone; basename; found = []; absolved = Hashtbl.create 64 } in
  let expr (it : Ast_iterator.iterator) e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        let parts = strip_stdlib (lid_parts txt) in
        if is_sort_head parts then
          List.iter (fun (_, a) -> absolve_hashtbl_under st a) args;
        if is_membership_head parts then
          List.iter (fun (_, a) -> absolve_faults_under st a) args;
        (* pipelined sorts: [fold ... |> List.sort f] and
           [List.sort f @@ fold ...] are sorted all the same *)
        match (last_part parts, args) with
        | "|>", [ (_, lhs); (_, rhs) ] when is_sort_expr rhs ->
          absolve_hashtbl_under st lhs
        | "@@", [ (_, lhs); (_, rhs) ] when is_sort_expr lhs ->
          absolve_hashtbl_under st rhs
        | _ -> ())
      | _ -> ())
    | _ -> ());
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident st loc (lid_parts txt)
    | Pexp_construct ({ txt; loc }, _) -> check_construct st loc (lid_parts txt)
    | Pexp_match (_, cases) | Pexp_function cases -> check_cases st cases
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it str;
  List.sort
    (fun a b ->
      let c = Int.compare a.line b.line in
      if c <> 0 then c
      else
        let c = Int.compare a.col b.col in
        if c <> 0 then c else String.compare a.rule.code b.rule.code)
    st.found
