(** One reported finding, with both human and machine renderings. *)

type t = {
  rule : Rules.t;
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  msg : string;
}

val pp : t Fmt.t
(** [file:line:col: [CODE slug] message] — editors recognize it. *)

val to_json : t -> string
(** One JSON object (single line, keys: file, line, col, rule, slug,
    group, msg). *)

val json_escape : string -> string
(** Minimal JSON string escaping (quotes, backslashes, control chars). *)
