(** Parse → summarize → link → check → suppress, over files and trees.

    The driver owns everything above a single rule: locating [.ml]
    files (deterministically — directory listings are sorted), parsing
    them with compiler-libs, zone classification (overridable for
    fixtures), the two-phase interprocedural pipeline (per-module
    {!Summary} extraction, then {!Callgraph}-driven {!Race}/{!Taint}
    evaluation), the digest-keyed summary cache behind incremental
    re-lints, suppression filtering with stale-allow detection (S001),
    and report aggregation. *)

type file_result = {
  path : string;
  zone : Zone.t;
  findings : Finding.t list;  (** active findings, in source order *)
  suppressed : int;  (** findings silenced by annotations *)
}

val lint_source :
  ?zone:Zone.t -> path:string -> string -> (file_result, string) result
(** Lint source text directly (the unit-test entry point): the full
    pipeline — including the P rules — on a single-module project.
    [Error] carries a parse diagnostic. *)

val lint_file : ?zone:Zone.t -> string -> (file_result, string) result

val collect_ml_files : string list -> string list
(** Expand files/directories into a sorted list of [.ml] paths,
    skipping [_build], [.git] and [lint_fixtures] subtrees. *)

type stage_timings = {
  t_parse : float;  (** file reads + parsing *)
  t_syntactic : float;  (** the D/F/E single-file rule pass *)
  t_extract : float;  (** per-module summary extraction *)
  t_graph : float;  (** call-graph construction + fixpoints *)
  t_race : float;  (** P001/P002 evaluation *)
  t_taint : float;  (** P003 evaluation *)
  t_stale : float;  (** suppression filtering + S001 *)
}
(** Wall spent per stage, measured with the caller-provided clock
    ([0.0] everywhere when no clock is injected — the analysis itself
    never reads the wall clock, per its own D002). *)

type summary = {
  files : int;
  active : int;
  suppressed_total : int;
  results : file_result list;  (** only files with findings or suppressions *)
  errors : (string * string) list;  (** unparsable files: path, diagnostic *)
  reanalyzed : string list;
      (** modules whose interprocedural raws were recomputed this run:
          changed modules, their reverse dependencies, and cache
          misses — sorted *)
  cached : string list;  (** modules served entirely from the cache *)
  timings : stage_timings;
}

val lint_paths :
  ?zone:Zone.t ->
  ?cache_file:string ->
  ?clock:(unit -> float) ->
  string list ->
  summary
(** Lint a tree.  With [cache_file], per-module summaries and
    interprocedural raws are loaded from / saved to that file keyed by
    a digest of each file's source and zone: an unchanged module whose
    forward dependencies are also unchanged is served from the cache
    without reparsing, and only changed modules plus their reverse
    dependency closure re-run the interprocedural passes.  [clock]
    (e.g. [Util.Clock.wall]) feeds {!stage_timings}. *)

val pp_summary : summary Fmt.t
(** Human report: one line per finding plus a tail line with totals. *)

val json_summary : summary -> string
(** The whole run as one JSON document (findings array + totals +
    cache split + stage timings), the [LINT_report.json] artifact
    format. *)
