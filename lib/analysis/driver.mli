(** Parse → check → suppress, over files and trees.

    The driver owns everything above a single rule: locating [.ml]
    files (deterministically — directory listings are sorted), parsing
    them with compiler-libs, zone classification (overridable for
    fixtures), suppression filtering, and report aggregation. *)

type file_result = {
  path : string;
  zone : Zone.t;
  findings : Finding.t list;  (** active findings, in source order *)
  suppressed : int;  (** findings silenced by annotations *)
}

val lint_source :
  ?zone:Zone.t -> path:string -> string -> (file_result, string) result
(** Lint source text directly (the unit-test entry point).  [Error]
    carries a parse diagnostic. *)

val lint_file : ?zone:Zone.t -> string -> (file_result, string) result

val collect_ml_files : string list -> string list
(** Expand files/directories into a sorted list of [.ml] paths,
    skipping [_build], [.git] and [lint_fixtures] subtrees. *)

type summary = {
  files : int;
  active : int;
  suppressed_total : int;
  results : file_result list;  (** only files with findings or suppressions *)
  errors : (string * string) list;  (** unparsable files: path, diagnostic *)
}

val lint_paths : ?zone:Zone.t -> string list -> summary

val pp_summary : summary Fmt.t
(** Human report: one line per finding plus a tail line with totals. *)

val json_summary : summary -> string
(** The whole run as one JSON document (findings array + totals),
    the [LINT_report.json] artifact format. *)
