(** Suppression annotations.

    A finding is intentional sometimes — an order-insensitive fold, a
    reporting-only clock read.  The escape hatch is a comment naming
    the rule's slug plus (by convention, enforced by review) a
    justification:

    {v
    (* lint: allow hashtbl-order — commutative count, order-free *)
    Hashtbl.fold (fun _ n acc -> acc + n) tally 0
    v}

    A per-line annotation suppresses the named rule on the line where
    its comment closes {e and} the following line — so it can sit
    above the offending expression, and a multi-line justification
    still covers the code beneath it.  A file-level annotation

    {v
    (* lint: allow-file poly-compare — keys are ints throughout *)
    v}

    suppresses the rule everywhere in the file.  Suppressed findings
    are counted and reported separately, never silently dropped. *)

type t

val scan : string -> t
(** Extract annotations from raw source text (comment syntax is not
    parsed; any line containing [lint: allow ...] counts). *)

val allowed : t -> line:int -> slug:string -> bool
(** Is a finding of [slug] at [line] (1-based) suppressed?  Every
    directive that covers the finding is marked {e used} as a side
    effect, which is what {!stale} reads back. *)

val count : t -> int
(** Number of annotations found (file-level plus per-line). *)

val stale : t -> (int * string) list
(** Directives no {!allowed} query ever matched, as
    [(source line, slug)] pairs in line order — the S001 input.  Only
    meaningful after every raw finding of the file has been filtered
    through {!allowed}. *)
