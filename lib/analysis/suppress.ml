type directive = {
  d_line : int;  (* source line of the [lint:] token, for reporting *)
  d_anchor : int;  (* line the allow covers (where its comment closes) *)
  d_slug : string;
  d_file_level : bool;
  mutable d_used : bool;
}

type t = {
  file_allows : (string, directive) Hashtbl.t;
  line_allows : (int * string, directive) Hashtbl.t;
  mutable directives : directive list;  (* reverse scan order *)
  mutable total : int;
}

let is_slug_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Find the next occurrence of [needle] in [hay] at or after [from]. *)
let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let token_at line i =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let start = skip i in
  let rec stop j = if j < n && is_slug_char line.[j] then stop (j + 1) else j in
  let stop = stop start in
  (String.sub line start (stop - start), stop)

(* A line-level allow anchors where its comment *closes*, so a
   multi-line justification still covers the code on the next line.
   [close_line] finds the first line at or after the directive whose
   text contains ["*)"] (searching past the directive on its own line);
   an unterminated comment anchors at the directive line itself. *)
let close_line lines ~lineno ~from =
  let n = Array.length lines in
  let rec go ln start =
    if ln > n then lineno
    else
      match find_sub lines.(ln - 1) "*)" start with
      | Some _ -> ln
      | None -> go (ln + 1) 0
  in
  go lineno from

let scan_line t lines ~lineno line =
  let rec go from =
    match find_sub line "lint:" from with
    | None -> ()
    | Some i ->
      let directive, after = token_at line (i + String.length "lint:") in
      (match directive with
      | "allow" ->
        let slug, stop = token_at line after in
        if slug <> "" then begin
          let anchor = close_line lines ~lineno ~from:stop in
          let d =
            {
              d_line = lineno;
              d_anchor = anchor;
              d_slug = slug;
              d_file_level = false;
              d_used = false;
            }
          in
          Hashtbl.replace t.line_allows (anchor, slug) d;
          t.directives <- d :: t.directives;
          t.total <- t.total + 1
        end
      | "allow-file" ->
        let slug, _ = token_at line after in
        if slug <> "" then begin
          let d =
            {
              d_line = lineno;
              d_anchor = lineno;
              d_slug = slug;
              d_file_level = true;
              d_used = false;
            }
          in
          Hashtbl.replace t.file_allows slug d;
          t.directives <- d :: t.directives;
          t.total <- t.total + 1
        end
      | _ -> ());
      go (i + 5)
  in
  go 0

let scan source =
  let t =
    {
      file_allows = Hashtbl.create 4;
      line_allows = Hashtbl.create 16;
      directives = [];
      total = 0;
    }
  in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  Array.iteri (fun i line -> scan_line t lines ~lineno:(i + 1) line) lines;
  t

let allowed t ~line ~slug =
  let mark = function
    | Some d ->
      d.d_used <- true;
      true
    | None -> false
  in
  (* Every directive that covers the finding is marked used — a
     redundant second allow for the same slug on the same line is a
     duplication smell, not a stale one. *)
  let f = mark (Hashtbl.find_opt t.file_allows slug) in
  let a = mark (Hashtbl.find_opt t.line_allows (line, slug)) in
  let b = mark (Hashtbl.find_opt t.line_allows (line - 1, slug)) in
  f || a || b

let count t = t.total

let stale t =
  t.directives
  |> List.filter_map (fun d ->
         if d.d_used then None else Some (d.d_line, d.d_slug))
  |> List.sort (fun (l1, s1) (l2, s2) ->
         let c = Int.compare l1 l2 in
         if c <> 0 then c else String.compare s1 s2)
