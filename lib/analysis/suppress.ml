type t = {
  file_allows : (string, unit) Hashtbl.t;
  line_allows : (int * string, unit) Hashtbl.t;
  mutable total : int;
}

let is_slug_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Find the next occurrence of [needle] in [hay] at or after [from]. *)
let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let token_at line i =
  let n = String.length line in
  let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
  let start = skip i in
  let rec stop j = if j < n && is_slug_char line.[j] then stop (j + 1) else j in
  let stop = stop start in
  (String.sub line start (stop - start), stop)

(* A line-level allow anchors where its comment *closes*, so a
   multi-line justification still covers the code on the next line.
   [close_line] finds the first line at or after the directive whose
   text contains ["*)"] (searching past the directive on its own line);
   an unterminated comment anchors at the directive line itself. *)
let close_line lines ~lineno ~from =
  let n = Array.length lines in
  let rec go ln start =
    if ln > n then lineno
    else
      match find_sub lines.(ln - 1) "*)" start with
      | Some _ -> ln
      | None -> go (ln + 1) 0
  in
  go lineno from

let scan_line t lines ~lineno line =
  let rec go from =
    match find_sub line "lint:" from with
    | None -> ()
    | Some i ->
      let directive, after = token_at line (i + String.length "lint:") in
      (match directive with
      | "allow" ->
        let slug, stop = token_at line after in
        if slug <> "" then begin
          let anchor = close_line lines ~lineno ~from:stop in
          Hashtbl.replace t.line_allows (anchor, slug) ();
          t.total <- t.total + 1
        end
      | "allow-file" ->
        let slug, _ = token_at line after in
        if slug <> "" then begin
          Hashtbl.replace t.file_allows slug ();
          t.total <- t.total + 1
        end
      | _ -> ());
      go (i + 5)
  in
  go 0

let scan source =
  let t =
    {
      file_allows = Hashtbl.create 4;
      line_allows = Hashtbl.create 16;
      total = 0;
    }
  in
  let lines = Array.of_list (String.split_on_char '\n' source) in
  Array.iteri (fun i line -> scan_line t lines ~lineno:(i + 1) line) lines;
  t

let allowed t ~line ~slug =
  Hashtbl.mem t.file_allows slug
  || Hashtbl.mem t.line_allows (line, slug)
  || Hashtbl.mem t.line_allows (line - 1, slug)

let count t = t.total
