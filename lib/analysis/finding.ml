type t = {
  rule : Rules.t;
  file : string;
  line : int;
  col : int;
  msg : string;
}

let pp ppf t =
  Fmt.pf ppf "%s:%d:%d: [%s %s] %s" t.file t.line t.col t.rule.Rules.code
    t.rule.Rules.slug t.msg

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"slug\":\"%s\",\"group\":\"%s\",\"msg\":\"%s\"}"
    (json_escape t.file) t.line t.col t.rule.Rules.code
    (json_escape t.rule.Rules.slug)
    (Rules.group_to_string t.rule.Rules.group)
    (json_escape t.msg)
