module Sim = Minidb.Sim
module Wal = Minidb.Wal
module Group = Leopard_shard.Group
module Participant = Leopard_shard.Participant
module Cluster = Leopard_replication.Cluster
module Repl_fault = Leopard_replication.Repl_fault
module Faulty_link = Leopard_net.Faulty_link

(* Plane composition: every shard of a 2PC group runs as a full minidb
   — its participant already recovers from its own WAL (see
   [Group.restart_participant]); this module additionally gives it a
   primary/follower replica set.  Each shard's committed decision feed
   (observed through the group's apply hook) ships to that shard's
   cluster over its own faulty link, and a seeded failover replaces the
   shard's store with whatever survivor prefix its replica set kept.

   The honest story composes cleanly: a failover truncates the shard to
   the survivor prefix, the shard re-acks only that prefix, and the
   coordinator's decision log backfills the rest — lossless at the
   group level, so honest stacked failovers cost catch-up lag (routed
   reads decline, the engine serves) and never degrade the verdict.
   The lies are the replication plane's own: a cluster that elects a
   lagging primary or loses an acked window *claims the rebuild is
   clean*, so the coordinator never re-ships the hole — a silent loss
   of committed cross-shard work the checker must prove as a CR
   violation on the global trace.

   Replica acks ride [Cluster]'s Async mode: the 2PC decision channel
   is the synchronous one, so stacked replication adds no commit gate
   and no new ambiguity channel.  With a disabled link and no hop the
   clusters take their synchronous fast path — zero events, zero RNG
   draws — keeping the zero-fault stacked run byte-identical to the
   unsharded, unreplicated run. *)

type config = {
  followers : int;
  hop_ns : int;
  link : Faulty_link.config;
  retransmit_ns : int;
  max_retransmits : int;
  faults : Repl_fault.t list;
  seed : int;
}

let config ?(followers = 1) ?(hop_ns = 0) ?(link = Faulty_link.disabled)
    ?(retransmit_ns = 500_000) ?(max_retransmits = 8) ?(faults = [])
    ?(seed = 0) () =
  if followers < 1 then invalid_arg "Stack.config: followers must be >= 1";
  if hop_ns < 0 then invalid_arg "Stack.config: hop_ns must be >= 0";
  if retransmit_ns <= 0 then
    invalid_arg "Stack.config: retransmit_ns must be > 0";
  if max_retransmits < 0 then
    invalid_arg "Stack.config: max_retransmits must be >= 0";
  { followers; hop_ns; link; retransmit_ns; max_retransmits; faults; seed }

type failover = {
  shard : int;
  primary : int;
  survived : int;
  lost : int;
  lag : int;
  claimed_clean : bool;
}

type t = {
  cfg : config;
  group : Group.t;
  clusters : Cluster.t array;
  hooked_through : int array;
      (* highest decision seq forwarded to each shard's cluster: the
         guard making the hook idempotent when the coordinator re-ships
         records a restarted participant re-applies *)
  mutable n_forwarded : int;
  mutable n_failovers : int;
  mutable n_claimed_clean : int;
  mutable n_lost : int;
}

let create ~sim ~group ~initial (cfg : config) =
  let shards = Group.shard_count group in
  let clusters =
    Array.init shards (fun shard ->
        let initial =
          List.filter
            (fun (cell, _) -> Group.shard_of_cell ~shards cell = shard)
            initial
        in
        let ccfg =
          Cluster.config ~followers:cfg.followers ~ack_mode:Cluster.Async
            ~hop_ns:cfg.hop_ns
            ~link:
              (* distinct per-shard fault streams off one seed, mirroring
                 the per-participant WAL seed derivation *)
              { cfg.link with Faulty_link.seed = cfg.link.Faulty_link.seed + ((shard + 1) * 7919) }
            ~retransmit_ns:cfg.retransmit_ns
            ~max_retransmits:cfg.max_retransmits ~follower_read_prob:0.0
            ~faults:cfg.faults ~seed:(cfg.seed + shard) ()
        in
        Cluster.create sim ccfg ~initial)
  in
  let t =
    {
      cfg;
      group;
      clusters;
      hooked_through = Array.make shards 0;
      n_forwarded = 0;
      n_failovers = 0;
      n_claimed_clean = 0;
      n_lost = 0;
    }
  in
  Group.set_apply_hook group
    (Some
       (fun ~shard ~seq record ->
         if seq = t.hooked_through.(shard) + 1 then begin
           t.hooked_through.(shard) <- seq;
           t.n_forwarded <- t.n_forwarded + 1;
           Cluster.on_commit t.clusters.(shard) record
         end));
  t

let cluster t ~shard = t.clusters.(shard)

(* Fail the shard's primary over to a replica.  [Cluster.failover]
   elects the most caught-up live follower (or, under
   [Repl_fault.Promote_lagging], the straggler), truncates its log to
   the survivor prefix and reports the lost suffix; the shard's store
   then rebuilds from that prefix.  Honestly the shard re-acks only the
   prefix and the coordinator re-ships the lost records; under the
   claim-clean faults it reports the pre-failover cursor instead, and
   the hole is silently gone. *)
let failover t ~shard =
  if shard < 0 || shard >= Array.length t.clusters then
    invalid_arg "Stack.failover: shard out of range";
  match Cluster.failover t.clusters.(shard) with
  | None -> None
  | Some promo ->
    t.n_failovers <- t.n_failovers + 1;
    t.n_lost <- t.n_lost + List.length promo.Cluster.lost;
    let before =
      (Group.participant t.group ~shard).Participant.applied_through
    in
    let survived_n = List.length promo.Cluster.survived in
    let claim_clean =
      Repl_fault.has_fault t.cfg.faults Repl_fault.Promote_lagging
      || Repl_fault.has_fault t.cfg.faults Repl_fault.Lose_acked_window
    in
    let claim_through =
      if claim_clean && before > survived_n then Some before else None
    in
    if claim_through <> None then
      t.n_claimed_clean <- t.n_claimed_clean + 1;
    let acked =
      Group.rebuild_participant t.group ~shard
        ~records:promo.Cluster.survived ~claim_through
    in
    t.hooked_through.(shard) <- acked;
    Some
      {
        shard;
        primary = promo.Cluster.target;
        survived = survived_n;
        lost = List.length promo.Cluster.lost;
        lag = promo.Cluster.target_lag;
        claimed_clean = claim_through <> None;
      }

type stats = {
  shards : int;
  followers_per_shard : int;
  forwarded : int;
  failovers : int;
  claimed_clean : int;
  lost_records : int;
  appends_sent : int;
  acks_delivered : int;
  log_entries : int;
}

let stats t =
  let sum f =
    Array.fold_left (fun acc cl -> acc + f (Cluster.stats cl)) 0 t.clusters
  in
  {
    shards = Array.length t.clusters;
    followers_per_shard = t.cfg.followers;
    forwarded = t.n_forwarded;
    failovers = t.n_failovers;
    claimed_clean = t.n_claimed_clean;
    lost_records = t.n_lost;
    appends_sent = sum (fun s -> s.Cluster.appends_sent);
    acks_delivered = sum (fun s -> s.Cluster.acks_delivered);
    log_entries = sum (fun s -> s.Cluster.log_length);
  }
