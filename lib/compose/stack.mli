(** Plane composition: every shard of a 2PC {!Leopard_shard.Group} runs
    as a full minidb — its own WAL (see the group's durability model)
    {e and} its own primary/follower replica set.

    Each shard's committed decision feed, observed through the group's
    apply hook, ships to a per-shard {!Leopard_replication.Cluster} over
    its own seeded faulty link; {!failover} replaces the shard's store
    with the survivor prefix its replica set kept.

    Honest failovers are lossless at the group level: the shard re-acks
    only the survivor prefix and the coordinator's decision log
    backfills the rest, so honest stacked faults cost catch-up lag
    (routed reads decline and the engine serves) — never a degraded
    verdict.  The {!Leopard_replication.Repl_fault} claim-clean lies
    ([Promote_lagging], [Lose_acked_window]) instead report the
    pre-failover cursor, so the coordinator never re-ships the hole: a
    silent loss of committed work the checker must prove as a CR
    violation on the global trace.

    Replication rides the cluster's [Async] ack mode — the 2PC decision
    channel is the synchronous one — so stacking adds no commit gate
    and no new ambiguity channel.  With a disabled link and zero hop
    latency the clusters take their synchronous fast path (no events,
    no RNG draws), keeping the zero-fault stacked run byte-identical to
    the unsharded, unreplicated run on the same seed. *)

type config = private {
  followers : int;  (** replicas per shard; >= 1 *)
  hop_ns : int;  (** one-way replication hop latency *)
  link : Leopard_net.Faulty_link.config;
      (** base link config; each shard's cluster derives a distinct
          seed from it *)
  retransmit_ns : int;
  max_retransmits : int;
  faults : Leopard_replication.Repl_fault.t list;
      (** planted lying-cluster bugs, applied inside every shard's
          replica set *)
  seed : int;  (** per-cluster RNG seed base *)
}

val config :
  ?followers:int ->
  ?hop_ns:int ->
  ?link:Leopard_net.Faulty_link.config ->
  ?retransmit_ns:int ->
  ?max_retransmits:int ->
  ?faults:Leopard_replication.Repl_fault.t list ->
  ?seed:int ->
  unit ->
  config
(** Validating constructor; defaults: 1 follower per shard, no latency,
    disabled link, retransmit every 0.5 ms capped at 8, no faults.
    Raises [Invalid_argument] on nonsense. *)

type failover = {
  shard : int;
  primary : int;  (** follower promoted within the shard's cluster *)
  survived : int;  (** records the promoted replica had applied *)
  lost : int;  (** records truncated off the replica set's log *)
  lag : int;  (** entries the target was missing at election *)
  claimed_clean : bool;
      (** the lying channel engaged: the shard reported the
          pre-failover cursor over a shorter rebuild *)
}

type t

val create :
  sim:Minidb.Sim.t ->
  group:Leopard_shard.Group.t ->
  initial:(Leopard_trace.Cell.t * Leopard_trace.Trace.value) list ->
  config ->
  t
(** Build one replica set per shard of [group] and register the group's
    apply hook (replacing any previous hook). *)

val cluster : t -> shard:int -> Leopard_replication.Cluster.t

val failover : t -> shard:int -> failover option
(** Fail [shard]'s primary over to a replica; [None] when its cluster
    has no live follower left to promote. *)

type stats = {
  shards : int;
  followers_per_shard : int;
  forwarded : int;  (** decisions forwarded shard -> cluster *)
  failovers : int;
  claimed_clean : int;  (** failovers where the lying channel engaged *)
  lost_records : int;  (** records truncated across all failovers *)
  appends_sent : int;
  acks_delivered : int;
  log_entries : int;
}

val stats : t -> stats
