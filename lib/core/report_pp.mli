(** Human-readable rendering of verification reports.

    One place for the presentation logic the CLI, examples and bench
    harness share: a one-line verdict, a summary block, a deduction
    breakdown, a capped bug listing and an anomaly census. *)

val verdict_line : Checker.report -> string
(** ["PASS — no isolation violations"],
    ["FAIL — N violations (top anomalies: ...)"] or, for a clean report
    over a degraded collection,
    ["INCONCLUSIVE — no violations proven, but ..."]. *)

val summary : Checker.report -> string
(** Multi-line block: traces, transactions, reads checked, deductions by
    source, memory counters, pruning counters, and — only when present —
    a degradation line (crashed clients, dropped traces, ...). *)

val degradation_line : Checker.degradation -> string
(** One line of degradation counters, or the empty string when the
    collection was clean ({!Checker.degradation_free}). *)

val bugs : ?limit:int -> Checker.report -> string
(** The first [limit] (default 5) bug descriptors, one per line; empty
    string when the report is clean. *)

val anomaly_census : Checker.report -> (Anomaly.t * int) list
(** Violation counts by classification, descending. *)

val print : ?limit:int -> Checker.report -> unit
(** [summary] + [bugs] + [verdict_line] to stdout. *)
