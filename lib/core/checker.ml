module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Interval = Leopard_util.Interval

type status = Active | Committed | Aborted | Indeterminate

type vtxn = {
  vid : int;
  mutable first_iv : Interval.t option;
  mutable terminal_iv : Interval.t option;
  mutable vstatus : status;
  writes : (Trace.value * Interval.t) Cell.Tbl.t;  (* last write per cell *)
  mutable write_cells : Cell.t list;  (* first-write order, reversed *)
  mutable pending_deps : Dep.t list;
      (* deps waiting for this endpoint's terminal *)
}

type pending_read = {
  reader : int;
  read_iv : Interval.t;
  snapshot_iv : Interval.t;
  items : (Cell.t * Trace.value) list;
}

(* One read item whose observed value matches an unresolved indeterminate
   write, parked until the reader terminates: a *committed* reader proves
   the writer's commit took effect (outcome resolution), any other fate
   leaves the item inconclusive. *)
type await_entry = {
  a_cell : Cell.t;
  a_value : Trace.value;
  a_writer : int;
  a_read_iv : Interval.t;
  a_snapshot_iv : Interval.t;
}

type degradation = {
  crashed_clients : int;
  indeterminate_txns : int;
  dup_traces_dropped : int;
  late_traces_dropped : int;
  lost_traces : int;
  inconclusive_reads : int;
  unterminated_txns : int;
  restarts : int;
  recovery_lost_records : int;
  ambiguous_commits : int;
  failovers : int;
  lost_suffix_commits : int;
  coord_ambiguous_commits : int;
}

(* [restarts] and [failovers] are deliberately absent: a clean
   crash–recovery epoch loses nothing, and a failover whose survivor
   prefix covers the whole log loses nothing either, so multi-epoch
   traces with zero damage still earn a full [Verified].  Only actual
   losses degrade the verdict. *)
let degradation_free d =
  d.crashed_clients = 0 && d.indeterminate_txns = 0
  && d.dup_traces_dropped = 0 && d.late_traces_dropped = 0
  && d.lost_traces = 0 && d.inconclusive_reads = 0
  && d.unterminated_txns = 0 && d.recovery_lost_records = 0
  && d.ambiguous_commits = 0 && d.lost_suffix_commits = 0
  && d.coord_ambiguous_commits = 0

type report = {
  traces : int;
  committed : int;
  aborted : int;
  bugs_total : int;
  bugs : Bug.t list;
  bugs_by_mechanism : (Bug.mechanism * int) list;
  deps_deduced : int;
  deduced_by_source : (Dep.source * int) list;
  reads_checked : int;
  peak_live : int;
  final_live : int;
  pruned_versions : int;
  pruned_locks : int;
  pruned_fuw : int;
  pruned_graph : int;
  resolved_ambiguous : int;
  degradation : degradation;
}

type verdict = Verified | Violation | Inconclusive of string

type t = {
  profile : Il_profile.t;
  gc_every : int;
  narrow_candidates : bool;
  relaxed_reads : bool;
  versions : Version_order.t;
  me : Me_verifier.t;
  fuw : Fuw_verifier.t;
  sc : Sc_verifier.t;
  log : Dep.Log.t;
  txns : (int, vtxn) Hashtbl.t;
  deferred : pending_read Leopard_util.Min_heap.t;
  initial_readers : int list ref Cell.Tbl.t;
      (* readers that observed a cell's untraced initial state before any
         version was known; resolved into rw edges when the cell's first
         version installs *)
  aborted_values : (Trace.value * int * int) list ref Cell.Tbl.t;
      (* (value, txn, terminal_aft) of aborted writes, kept only to
         classify violations as G1a aborted reads *)
  indeterminate_ids : (int, unit) Hashtbl.t;
      (* txns whose commit outcome the collector cannot know (crashed
         clients): excluded from ME/FUW/SC obligations, and reads
         matching their writes are inconclusive, not violations *)
  indeterminate_values : (Trace.value * int) list ref Cell.Tbl.t;
      (* (value, txn) of indeterminate writes; never pruned — a crashed
         commit may have installed them at any later point *)
  ambiguous_ids : (int, unit) Hashtbl.t;
      (* txns whose COMMIT was sent but never acknowledged (wire faults):
         indeterminate like a crashed client's, but *resolvable* — a
         later committed read observing their writes proves the commit *)
  resolved_ids : (int, unit) Hashtbl.t;
      (* indeterminate/ambiguous txns promoted to definitely-committed
         by outcome resolution; marks stay in their tables, resolution
         is recorded here *)
  lost_ids : (int, unit) Hashtbl.t;
      (* txns a failover reported lost with the truncated log suffix:
         indeterminate like a crashed client's, and — unlike ambiguous
         commits — never resolvable, because the surviving timeline
         provably does not contain them *)
  coord_ids : (int, unit) Hashtbl.t;
      (* the subset of [ambiguous_ids] whose ambiguity came from a 2PC
         coordinator crash rather than the wire: tagged only when the
         coordinator mark was the *first* to make the txn ambiguous, so
         the wire and coordinator channels partition exactly *)
  awaiting : (int, await_entry list ref) Hashtbl.t;
      (* reader txn -> read items parked on an unresolved writer *)
  dedup_seen : (int * int * int, Trace.t) Hashtbl.t;
      (* (client, txn, ts_bef) of traces at the current frontier, for
         dropping chaos-duplicated deliveries *)
  mutable dedup_ts : int;
  mutable frontier : int;
  mutable traces : int;
  mutable committed : int;
  mutable aborted : int;
  mutable bugs_total : int;
  mutable bugs : Bug.t list;  (* reversed; capped *)
  mutable reads_checked : int;
  mutable peak_live : int;
  mutable pruned_versions : int;
  mutable pruned_locks : int;
  mutable pruned_fuw : int;
  mutable pruned_graph : int;
  mutable dup_dropped : int;
  mutable inconclusive_reads : int;
  mutable ext_crashed_clients : int;
  mutable ext_late_dropped : int;
  mutable ext_lost : int;
  mutable ext_restarts : int;
  mutable ext_recovery_lost : int;
  mutable ext_failovers : int;
  mutable ext_lost_commits : int;
  mutable finalized : bool;
  mutable dep_hook : (Dep.t -> unit) option;
  mech_counts : (Bug.mechanism, int) Hashtbl.t;
}

let max_stored_bugs = 10_000

let create ?(gc_every = 512) ?(narrow_candidates = true)
    ?(relaxed_reads = false) profile =
  {
    profile;
    gc_every;
    narrow_candidates;
    relaxed_reads;
    versions = Version_order.create ();
    me = Me_verifier.create ();
    fuw = Fuw_verifier.create ();
    sc = Sc_verifier.create profile.Il_profile.check_sc;
    log = Dep.Log.create ();
    txns = Hashtbl.create 4096;
    initial_readers = Cell.Tbl.create 64;
    aborted_values = Cell.Tbl.create 64;
    indeterminate_ids = Hashtbl.create 8;
    indeterminate_values = Cell.Tbl.create 8;
    ambiguous_ids = Hashtbl.create 8;
    resolved_ids = Hashtbl.create 8;
    lost_ids = Hashtbl.create 8;
    coord_ids = Hashtbl.create 8;
    awaiting = Hashtbl.create 8;
    dedup_seen = Hashtbl.create 64;
    dedup_ts = min_int;
    deferred =
      Leopard_util.Min_heap.create ~compare:(fun a b ->
          Int.compare (Interval.aft a.read_iv) (Interval.aft b.read_iv));
    frontier = min_int;
    traces = 0;
    committed = 0;
    aborted = 0;
    bugs_total = 0;
    bugs = [];
    reads_checked = 0;
    peak_live = 0;
    pruned_versions = 0;
    pruned_locks = 0;
    pruned_fuw = 0;
    pruned_graph = 0;
    dup_dropped = 0;
    inconclusive_reads = 0;
    ext_crashed_clients = 0;
    ext_late_dropped = 0;
    ext_lost = 0;
    ext_restarts = 0;
    ext_recovery_lost = 0;
    ext_failovers = 0;
    ext_lost_commits = 0;
    finalized = false;
    dep_hook = None;
    mech_counts = Hashtbl.create 4;
  }

let set_dep_hook t f = t.dep_hook <- Some f

let vtxn t id =
  match Hashtbl.find_opt t.txns id with
  | Some v -> v
  | None ->
    let v =
      {
        vid = id;
        first_iv = None;
        terminal_iv = None;
        vstatus =
          (if
             Hashtbl.mem t.indeterminate_ids id
             || Hashtbl.mem t.lost_ids id
             || Hashtbl.mem t.ambiguous_ids id
                && not (Hashtbl.mem t.resolved_ids id)
           then Indeterminate
           else Active);
        writes = Cell.Tbl.create 8;
        write_cells = [];
        pending_deps = [];
      }
    in
    Hashtbl.replace t.txns id v;
    v

let status_of t id =
  match Hashtbl.find_opt t.txns id with
  | Some v -> v.vstatus
  | None -> Committed (* pruned transactions were terminal; treat as done *)

let report_bug t (bug : Bug.t) =
  t.bugs_total <- t.bugs_total + 1;
  Hashtbl.replace t.mech_counts bug.mechanism
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.mech_counts bug.mechanism));
  if t.bugs_total <= max_stored_bugs then t.bugs <- bug :: t.bugs

let live_size t =
  Version_order.live_versions t.versions
  + Me_verifier.live_entries t.me
  + Fuw_verifier.live_entries t.fuw
  + Sc_verifier.nodes t.sc + Sc_verifier.edges t.sc
  + Leopard_util.Min_heap.length t.deferred
  + Hashtbl.length t.txns

(* ------------------------------------------------------------------ *)
(* Dependency plumbing: log every deduction; forward to the certifier
   once both endpoints are committed. *)

let rec emit_dep t (d : Dep.t) =
  if d.from_txn <> d.to_txn then begin
    let fresh = Dep.Log.add t.log d in
    if fresh then begin
      (match t.dep_hook with Some f -> f d | None -> ());
      forward_dep t d
    end
  end

and forward_dep t (d : Dep.t) =
  match (status_of t d.from_txn, status_of t d.to_txn) with
  | Committed, Committed ->
    List.iter (report_bug t) (Sc_verifier.add_dep t.sc d)
  | Aborted, _ | _, Aborted -> ()
  | Indeterminate, _ | _, Indeterminate -> ()
  | Active, _ ->
    let v = vtxn t d.from_txn in
    v.pending_deps <- d :: v.pending_deps
  | _, Active ->
    let v = vtxn t d.to_txn in
    v.pending_deps <- d :: v.pending_deps

and flush_pending t v =
  let deps = v.pending_deps in
  v.pending_deps <- [];
  List.iter (forward_dep t) deps

(* ------------------------------------------------------------------ *)
(* Indeterminate transactions: a crashed client's in-flight transaction
   may or may not have committed server-side, and the trace stream cannot
   tell.  Treating it as either outcome risks false alarms, so it carries
   no obligations: its ME locks are discarded unchecked (release instant
   unknown), it joins no FUW/SC state (never registered without a commit
   trace), pending deps touching it are dropped, and reads observing one
   of its written values are inconclusive rather than violations. *)

let register_indeterminate_value t cell value vid =
  let entries =
    match Cell.Tbl.find_opt t.indeterminate_values cell with
    | Some r -> r
    | None ->
      let r = ref [] in
      Cell.Tbl.add t.indeterminate_values cell r;
      r
  in
  if not (List.mem (value, vid) !entries) then
    entries := (value, vid) :: !entries

let make_indeterminate t (v : vtxn) =
  v.vstatus <- Indeterminate;
  v.pending_deps <- [];
  Me_verifier.discard t.me ~txn:v.vid;
  (* lint: allow hashtbl-order — one binding per cell and the cells are
     registered independently; visit order cannot be observed *)
  Cell.Tbl.iter
    (fun cell (value, _) -> register_indeterminate_value t cell value v.vid)
    v.writes

let mark_indeterminate t ~txn =
  if not (Hashtbl.mem t.indeterminate_ids txn) then begin
    Hashtbl.replace t.indeterminate_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* An ambiguous commit (wire faults: COMMIT sent, acknowledgement never
   received) carries the same exclusions as a crashed client's
   transaction, but unlike the chaos plane it is {e resolvable}: the
   COMMIT was definitely issued, so a later {e committed} read observing
   one of its written values proves the engine applied it, and the
   checker promotes it to definitely-committed (outcome resolution).
   Unresolved ones surface as the [ambiguous_commits] degradation. *)
let mark_ambiguous_commit t ~txn =
  if
    (not (Hashtbl.mem t.ambiguous_ids txn))
    && not (Hashtbl.mem t.resolved_ids txn)
  then begin
    Hashtbl.replace t.ambiguous_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* A 2PC coordinator crash before the commit decision: the client can
   never learn the outcome, exactly like a wire-ambiguous commit, and it
   carries the same exclusions and the same resolution rule (the
   PREPAREs were sent, so a later committed read observing one of its
   written values proves the engine applied it).  It is tagged into a
   separate degradation channel — [coord_ambiguous_commits] — so
   coordinator give-ups and wire give-ups partition exactly: the tag is
   only added when this mark is the first to make the txn ambiguous. *)
let mark_coord_ambiguous t ~txn =
  if
    (not (Hashtbl.mem t.ambiguous_ids txn))
    && not (Hashtbl.mem t.resolved_ids txn)
  then begin
    Hashtbl.replace t.ambiguous_ids txn ();
    Hashtbl.replace t.coord_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* A commit on the truncated suffix of a failover.  It shares the
   exclusions of an ambiguous commit but is permanently unresolvable:
   the surviving timeline provably does not contain it, so a later read
   observing its value proves nothing about *this* timeline (the read
   may predate the promotion).  It is pulled out of the ambiguous set —
   otherwise a pre-failover read could "resolve" it and post-failover
   reads missing it would become false violations. *)
let mark_lost_commit t ~txn =
  Hashtbl.remove t.ambiguous_ids txn;
  Hashtbl.remove t.resolved_ids txn;
  Hashtbl.remove t.coord_ids txn;
  if not (Hashtbl.mem t.lost_ids txn) then begin
    Hashtbl.replace t.lost_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

let indeterminate_writer t cell value =
  match Cell.Tbl.find_opt t.indeterminate_values cell with
  | Some entries ->
    Option.map snd (List.find_opt (fun (v, _) -> v = value) !entries)
  | None -> None

let resolvable t writer =
  Hashtbl.mem t.ambiguous_ids writer
  && not (Hashtbl.mem t.resolved_ids writer)

(* ------------------------------------------------------------------ *)
(* CR verification of one deferred read (Algorithm 2, ConsistentRead) *)

(* The §V-A cooperation optimization: among candidates certainly installed
   before the snapshot (the pivot and its overlaps), a version with a
   deduced ww successor in the same group was certainly overwritten before
   the snapshot and cannot be visible. *)
let narrow t ~snapshot candidates =
  if not t.narrow_candidates then candidates
  else begin
    let before_snapshot (v : Version_order.version) =
      Interval.certainly_before v.commit_iv snapshot
    in
    let group = List.filter before_snapshot candidates in
    List.filter
      (fun (v : Version_order.version) ->
        (not (before_snapshot v))
        || not
             (List.exists
                (fun (w : Version_order.version) ->
                  w.vtxn <> v.vtxn && Dep.Log.mem t.log Dep.Ww v.vtxn w.vtxn)
                group))
      candidates
  end

let install_versions t (v : vtxn) ~commit_iv =
  List.iter
    (fun cell ->
      match Cell.Tbl.find_opt v.writes cell with
      | None -> ()
      | Some (value, write_iv) ->
        let version =
          {
            Version_order.value;
            vtxn = v.vid;
            write_iv;
            commit_iv;
            readers = [];
          }
        in
        let is_first = ref false in
        Version_order.install t.versions cell version
          ~predecessor:(fun pred ->
            match pred with
            | None -> is_first := true
            | Some (p : Version_order.version) ->
              if
                Interval.certainly_before p.commit_iv commit_iv
                && p.vtxn <> v.vid
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = p.vtxn;
                    to_txn = v.vid;
                    source = Dep.From_version_order;
                  };
              (* Fig. 9: readers matched to the predecessor antidepend on
                 the new direct successor. *)
              List.iter
                (fun reader ->
                  if reader <> v.vid then
                    emit_dep t
                      {
                        Dep.kind = Dep.Rw;
                        from_txn = reader;
                        to_txn = v.vid;
                        source = Dep.Derived_rw;
                      })
                p.readers)
          ~successor:(fun succ ->
            match succ with
            | None ->
              (* Appended at the tail.  If it is also the very first
                 version of the cell, readers of the untraced initial
                 state antidepend on it. *)
              if !is_first then begin
                match Cell.Tbl.find_opt t.initial_readers cell with
                | Some readers ->
                  List.iter
                    (fun reader ->
                      if reader <> v.vid then
                        emit_dep t
                          {
                            Dep.kind = Dep.Rw;
                            from_txn = reader;
                            to_txn = v.vid;
                            source = Dep.Derived_rw;
                          })
                    !readers;
                  Cell.Tbl.remove t.initial_readers cell
                | None -> ()
              end
            | Some (s : Version_order.version) ->
              if
                Interval.certainly_before commit_iv s.commit_iv
                && s.vtxn <> v.vid
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = v.vid;
                    to_txn = s.vtxn;
                    source = Dep.From_version_order;
                  }))
    (List.rev v.write_cells)

let rec check_read t (pr : pending_read) =
  t.reads_checked <- t.reads_checked + 1;
  List.iter (fun (cell, value) -> check_item t pr cell value) pr.items

and check_item t (pr : pending_read) cell value =
  let chain = Version_order.chain t.versions cell in
  match chain with
  | [] -> (
    match indeterminate_writer t cell value with
    | Some writer when resolvable t writer ->
      (* no committed version, but the value matches an unacknowledged
         commit's write: resolvable once the reader's fate is known *)
      defer_or_resolve t pr cell value writer
    | Some _ ->
      (* no committed version, but the value matches an indeterminate
         write: the crashed transaction may have committed it *)
      t.inconclusive_reads <- t.inconclusive_reads + 1
    | None ->
      (* Untraced cell so far: the read observed the initial state.  If
         a first version installs later, the reader antidepends on it. *)
      let readers =
        match Cell.Tbl.find_opt t.initial_readers cell with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.initial_readers cell r;
          r
      in
      if not (List.mem pr.reader !readers) then
        readers := pr.reader :: !readers)
  | _ -> (
    let candidates =
      narrow t ~snapshot:pr.snapshot_iv
        (Candidate.candidates ~snapshot:pr.snapshot_iv chain)
    in
    let matches =
      List.filter
        (fun (v : Version_order.version) -> v.value = value)
        candidates
    in
    match matches with
    | [] -> (
      match indeterminate_writer t cell value with
      | Some writer when resolvable t writer ->
        defer_or_resolve t pr cell value writer
      | Some _ ->
        (* the value may stem from a crashed client's transaction
           whose commit outcome is unknown: neither a violation nor a
           pass can be concluded *)
        t.inconclusive_reads <- t.inconclusive_reads + 1
      | None ->
        if t.ext_lost > 0 || t.ext_late_dropped > 0 then
          (* the collection is known lossy: the observed value may stem
             from a write whose trace never reached the verifier, so a
             missing match is not evidence of a violation *)
          t.inconclusive_reads <- t.inconclusive_reads + 1
        else if Candidate.has_pivot ~snapshot:pr.snapshot_iv chain then begin
          (* classify: where did the impossible value come from? *)
          let classified =
            Candidate.classify ~snapshot:pr.snapshot_iv chain
          in
          let from_chain =
            List.find_opt
              (fun ((v : Version_order.version), _) -> v.value = value)
              classified
          in
          let anomaly =
            match from_chain with
            | Some (_, Candidate.Garbage) -> Anomaly.Stale_read
            | Some (_, Candidate.Future) -> Anomaly.Future_read
            | Some (_, (Candidate.Overlap | Candidate.Pivot
                       | Candidate.Pivot_overlap)) ->
              (* in the candidate region but excluded by ww narrowing *)
              Anomaly.Stale_read
            | None -> (
              match Cell.Tbl.find_opt t.aborted_values cell with
              | Some entries
                when List.exists (fun (v, _, _) -> v = value) !entries ->
                Anomaly.Aborted_read
              | Some _ | None -> Anomaly.Dirty_read)
          in
          report_bug t
            (Bug.make ~mechanism:Bug.Cr ~anomaly ~txns:[ pr.reader ] ~cell
               (Printf.sprintf
                  "read by txn %d observed value %d on %s, which matches \
                   no possibly-visible version (%d candidates, %d known \
                   versions)"
                  pr.reader value (Cell.to_string cell)
                  (List.length candidates) (List.length chain)))
        end
        else begin
          (* No pivot: the read observed the untraced initial state.
             When the oldest known version is certainly the first, it
             is the initial state's direct successor, so the read
             antidepends on its writer (Fig. 9 applied to the initial
             version).  No pivot also implies nothing was pruned for
             this cell, so the chain head is the genuine first
             version. *)
          match chain with
          | first :: rest
            when first.Version_order.vtxn <> pr.reader
                 && (match rest with
                    | [] -> true
                    | second :: _ ->
                      Interval.certainly_before first.Version_order.commit_iv
                        second.Version_order.commit_iv) ->
            emit_dep t
              {
                Dep.kind = Dep.Rw;
                from_txn = pr.reader;
                to_txn = first.Version_order.vtxn;
                source = Dep.Derived_rw;
              }
          | _ -> ()
        end)
    | [ v ] ->
      if v.vtxn <> pr.reader then begin
        emit_dep t
          {
            Dep.kind = Dep.Wr;
            from_txn = v.vtxn;
            to_txn = pr.reader;
            source = Dep.From_cr;
          };
        (* register for future rw derivation *)
        if not (List.mem pr.reader v.readers) then
          v.readers <- pr.reader :: v.readers;
        (* rw to an already-known direct successor *)
        let rec successor = function
          | a :: b :: rest ->
            if a == v then Some b else successor (b :: rest)
          | [ _ ] | [] -> None
        in
        match successor chain with
        | Some (s : Version_order.version) when s.vtxn <> pr.reader ->
          emit_dep t
            {
              Dep.kind = Dep.Rw;
              from_txn = pr.reader;
              to_txn = s.vtxn;
              source = Dep.Derived_rw;
            }
        | Some _ | None -> ()
      end
    | _ :: _ :: _ -> ()  (* ambiguous match: uncertain, no deduction *))

(* Outcome resolution (the wire layer's counterpart to Algorithm 2): a
   read item matching an unresolved ambiguous commit is settled by the
   {e reader's} fate.  A committed reader is proof the writer's commit
   took effect — the engine served the value to a transaction that went
   on to commit, which no engine at read-committed or above does for an
   unapplied write — so the writer is promoted and the item re-checked
   against the now-installed version.  Any other fate for the reader
   (aborted, itself indeterminate, never terminated) leaves the item
   inconclusive, exactly as PR 1's blanket exclusion would have. *)
and defer_or_resolve t (pr : pending_read) cell value writer =
  match status_of t pr.reader with
  | Committed ->
    if promote_ambiguous t writer ~observed_aft:(Interval.aft pr.read_iv) then
      check_item t pr cell value
    else t.inconclusive_reads <- t.inconclusive_reads + 1
  | Active ->
    let entries =
      match Hashtbl.find_opt t.awaiting pr.reader with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace t.awaiting pr.reader r;
        r
    in
    entries :=
      {
        a_cell = cell;
        a_value = value;
        a_writer = writer;
        a_read_iv = pr.read_iv;
        a_snapshot_iv = pr.snapshot_iv;
      }
      :: !entries
  | Aborted | Indeterminate ->
    t.inconclusive_reads <- t.inconclusive_reads + 1

(* Promote an ambiguous commit to definitely-committed.  The commit
   interval is deliberately wide — from the writer's first operation to
   the observing read's end — which only ever {e adds} visibility
   candidates downstream, so the promotion cannot manufacture a
   violation out of uncertainty.  ME and FUW obligations stay waived
   (their release/registration instants are unknowable), matching the
   conservative treatment of indeterminate transactions. *)
and promote_ambiguous t writer ~observed_aft =
  match Hashtbl.find_opt t.txns writer with
  | Some w when w.vstatus = Indeterminate && resolvable t writer ->
    (* lint: allow hashtbl-order — in-place per-key filter; no state
       crosses from one binding to the next *)
    Cell.Tbl.iter
      (fun _cell entries ->
        entries := List.filter (fun (_, id) -> id <> writer) !entries)
      t.indeterminate_values;
    Hashtbl.replace t.resolved_ids writer ();
    w.vstatus <- Committed;
    t.committed <- t.committed + 1;
    let bef =
      match w.first_iv with
      | Some f -> min (Interval.bef f) (observed_aft - 1)
      | None -> observed_aft - 1
    in
    let commit_iv = Interval.make ~bef ~aft:observed_aft in
    w.terminal_iv <- Some commit_iv;
    let first_iv = match w.first_iv with Some f -> f | None -> commit_iv in
    if t.profile.Il_profile.check_sc <> None then
      Sc_verifier.note_commit t.sc ~txn:w.vid ~first_iv ~terminal_iv:commit_iv;
    if t.profile.Il_profile.check_cr <> None then
      install_versions t w ~commit_iv;
    flush_pending t w;
    true
  | Some _ | None -> false

(* Settle the read items parked on ambiguous writers once their reader
   terminates.  Called from the terminal-trace handlers and finalize. *)
and resolve_awaiting t (v : vtxn) ~committed =
  match Hashtbl.find_opt t.awaiting v.vid with
  | None -> ()
  | Some entries ->
    Hashtbl.remove t.awaiting v.vid;
    List.iter
      (fun e ->
        if committed then begin
          let pr =
            {
              reader = v.vid;
              read_iv = e.a_read_iv;
              snapshot_iv = e.a_snapshot_iv;
              items = [];
            }
          in
          if resolvable t e.a_writer then begin
            if
              promote_ambiguous t e.a_writer
                ~observed_aft:(Interval.aft e.a_read_iv)
            then check_item t pr e.a_cell e.a_value
            else t.inconclusive_reads <- t.inconclusive_reads + 1
          end
          else
            (* already promoted by another reader: re-check against the
               installed version *)
            check_item t pr e.a_cell e.a_value
        end
        else if resolvable t e.a_writer then
          t.inconclusive_reads <- t.inconclusive_reads + 1)
      (List.rev !entries)

let flush_deferred t ~upto =
  let ready =
    Leopard_util.Min_heap.drain_while t.deferred (fun pr ->
        Interval.aft pr.read_iv <= upto)
  in
  List.iter (check_read t) ready

(* ------------------------------------------------------------------ *)
(* GC *)

let horizon t =
  let h =
    (* lint: allow hashtbl-order — min-fold; commutative and associative *)
    Hashtbl.fold
      (fun _ v acc ->
        match (v.vstatus, v.first_iv) with
        | Active, Some iv -> min acc (Interval.bef iv)
        | _ -> acc)
      t.txns t.frontier
  in
  (* Defensive: a deferred read normally belongs to an active transaction
     (its terminal trace cannot start before the read ends at a sequential
     client), but hostile histories can violate that; never prune past a
     queued read's snapshot. *)
  List.fold_left
    (fun acc pr -> min acc (Interval.bef pr.snapshot_iv))
    h
    (Leopard_util.Min_heap.to_sorted_list t.deferred)

let run_gc t =
  let h = horizon t in
  t.pruned_versions <-
    t.pruned_versions + Version_order.prune t.versions ~horizon:h;
  t.pruned_locks <- t.pruned_locks + Me_verifier.prune t.me ~horizon:h;
  t.pruned_fuw <- t.pruned_fuw + Fuw_verifier.prune t.fuw ~horizon:h;
  t.pruned_graph <- t.pruned_graph + Sc_verifier.gc t.sc ~frontier:h;
  (* lint: allow hashtbl-order — in-place per-key prune, keys independent *)
  Cell.Tbl.iter
    (fun _cell entries ->
      entries := List.filter (fun (_, _, aft) -> aft > h) !entries)
    t.aborted_values;
  (* prune terminated transaction records behind the horizon *)
  let victims =
    (* lint: allow hashtbl-order — collects a removal set; every victim is
       removed whatever the fold order *)
    Hashtbl.fold
      (fun id v acc ->
        match (v.vstatus, v.terminal_iv) with
        | (Committed | Aborted), Some iv when Interval.aft iv <= h ->
          id :: acc
        | _ -> acc)
      t.txns []
  in
  List.iter (Hashtbl.remove t.txns) victims

(* ------------------------------------------------------------------ *)
(* Trace handlers *)

let me_granule t (cell : Cell.t) =
  match t.profile.Il_profile.lock_granularity with
  | Il_profile.Row_locks -> Cell.row_key cell
  | Il_profile.Table_locks -> (cell.Cell.table, -1)

let me_on_pair t ~row ~(mine : Me_verifier.entry) ~(other : Me_verifier.entry)
    verdict =
  match verdict with
  | Me_verifier.Violation ->
    let anomaly =
      if mine.mode = Me_verifier.X && other.mode = Me_verifier.X then
        Anomaly.Dirty_write
      else Anomaly.Read_lock_violation
    in
    report_bug t
      (Bug.make ~mechanism:Bug.Me ~anomaly ~txns:[ mine.etxn; other.etxn ] ~row
         (Printf.sprintf
            "incompatible locks on row (t%d,r%d): transactions %d and %d \
             certainly held conflicting locks simultaneously"
            (fst row) (snd row) mine.etxn other.etxn))
  | Me_verifier.Ww (first, second) ->
    if status_of t first = Committed && status_of t second = Committed then
      emit_dep t
        {
          Dep.kind = Dep.Ww;
          from_txn = first;
          to_txn = second;
          source = Dep.From_me;
        }
  | Me_verifier.Unordered -> ()

let handle_read t (v : vtxn) trace items locking =
  let iv = Trace.interval trace in
  (* mutual exclusion entries *)
  let p = t.profile in
  let rows =
    List.sort_uniq Cell.compare_row_key
      (List.map (fun (i : Trace.item) -> me_granule t i.cell) items)
  in
  if p.Il_profile.check_me && v.vstatus <> Indeterminate then begin
    if locking && p.Il_profile.me_locking_reads then
      List.iter
        (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.X ~iv)
        rows
    else if (not locking) && p.Il_profile.me_reads then
      List.iter
        (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.S ~iv)
        rows
  end;
  match p.Il_profile.check_cr with
  | None -> ()
  | Some granularity ->
    let snapshot_iv =
      match granularity with
      | Il_profile.Stmt_snapshot ->
        if t.relaxed_reads then
          (* claim compatibility: any snapshot between transaction begin
             and this statement may have served the read *)
          match v.first_iv with
          | Some f -> Interval.make ~bef:(Interval.bef f) ~aft:(Interval.aft iv)
          | None -> iv
        else iv
      | Il_profile.Txn_snapshot -> (
        match v.first_iv with Some f -> f | None -> iv)
    in
    (* Case 1 of CR: an operation must see the transaction's own earlier
       writes.  Items on cells this transaction wrote must return the
       latest own value; other items go through candidate matching once
       the frontier passes the read. *)
    let deferred_items =
      List.filter_map
        (fun (i : Trace.item) ->
          match Cell.Tbl.find_opt v.writes i.cell with
          | Some (own_value, _) ->
            if i.value <> own_value then
              report_bug t
                (Bug.make ~mechanism:Bug.Cr ~anomaly:Anomaly.Intermediate_read
                   ~txns:[ v.vid ] ~cell:i.cell
                   (Printf.sprintf
                      "read by txn %d observed value %d on %s although the \
                       transaction's own latest write installed %d"
                      v.vid i.value (Cell.to_string i.cell) own_value));
            None
          | None -> Some (i.cell, i.value))
        items
    in
    if deferred_items <> [] then
      Leopard_util.Min_heap.push t.deferred
        {
          reader = v.vid;
          read_iv = iv;
          snapshot_iv;
          items = deferred_items;
        }

let handle_write t (v : vtxn) trace items =
  let iv = Trace.interval trace in
  let p = t.profile in
  List.iter
    (fun (i : Trace.item) ->
      if not (Cell.Tbl.mem v.writes i.cell) then
        v.write_cells <- i.cell :: v.write_cells;
      Cell.Tbl.replace v.writes i.cell (i.value, iv);
      if v.vstatus = Indeterminate then
        register_indeterminate_value t i.cell i.value v.vid)
    items;
  if p.Il_profile.check_me && v.vstatus <> Indeterminate then begin
    let rows =
      List.sort_uniq Cell.compare_row_key
        (List.map (fun (i : Trace.item) -> me_granule t i.cell) items)
    in
    List.iter
      (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.X ~iv)
      rows
  end

let handle_commit t (v : vtxn) trace =
  let commit_iv = Trace.interval trace in
  v.terminal_iv <- Some commit_iv;
  v.vstatus <- Committed;
  t.committed <- t.committed + 1;
  let first_iv =
    match v.first_iv with Some f -> f | None -> commit_iv
  in
  if t.profile.Il_profile.check_sc <> None then
    Sc_verifier.note_commit t.sc ~txn:v.vid ~first_iv ~terminal_iv:commit_iv;
  (* lock releases + pair checks *)
  if t.profile.Il_profile.check_me then
    Me_verifier.release t.me ~txn:v.vid ~iv:commit_iv ~on_pair:(me_on_pair t);
  (* version installation (CR mirror) *)
  if t.profile.Il_profile.check_cr <> None then
    install_versions t v ~commit_iv;
  (* FUW registration and pair checks *)
  if t.profile.Il_profile.check_fuw && v.write_cells <> [] then begin
    let rows =
      List.sort_uniq Cell.compare_row_key (List.map Cell.row_key v.write_cells)
    in
    let entry =
      { Fuw_verifier.ftxn = v.vid; snapshot_iv = first_iv; commit_iv }
    in
    List.iter
      (fun row ->
        Fuw_verifier.register t.fuw ~row entry ~on_pair:(fun ~row ~other verdict ->
            match verdict with
            | Fuw_verifier.Violation ->
              report_bug t
                (Bug.make ~mechanism:Bug.Fuw ~anomaly:Anomaly.Lost_update
                   ~txns:[ other.ftxn; v.vid ] ~row
                   (Printf.sprintf
                      "first-updater-wins violated on row (t%d,r%d): \
                       concurrent transactions %d and %d both committed \
                       updates"
                      (fst row) (snd row) other.ftxn v.vid))
            | Fuw_verifier.Ww (first, second) ->
              if
                status_of t first = Committed
                && status_of t second = Committed
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = first;
                    to_txn = second;
                    source = Dep.From_fuw;
                  }
            | Fuw_verifier.Unordered -> ()))
      rows
  end;
  flush_pending t v;
  resolve_awaiting t v ~committed:true

let handle_abort t (v : vtxn) trace =
  let iv = Trace.interval trace in
  v.terminal_iv <- Some iv;
  v.vstatus <- Aborted;
  t.aborted <- t.aborted + 1;
  v.pending_deps <- [];
  (* lint: allow hashtbl-order — one binding per written cell, each moved
     to its own aborted-values entry; bindings never interact *)
  Cell.Tbl.iter
    (fun cell (value, _) ->
      let entries =
        match Cell.Tbl.find_opt t.aborted_values cell with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.aborted_values cell r;
          r
      in
      entries := (value, v.vid, Interval.aft iv) :: !entries)
    v.writes;
  if t.profile.Il_profile.check_me then
    Me_verifier.release t.me ~txn:v.vid ~iv ~on_pair:(me_on_pair t);
  resolve_awaiting t v ~committed:false

(* ------------------------------------------------------------------ *)

(* Duplicate deliveries (chaos / retrying shippers) are deduped by
   (client, txn, ts_bef): a client issues at most one op at a given
   instant, so two structurally equal traces under that key are one
   delivery seen twice.  Keys are only retained while the frontier sits
   at their ts_bef — sorted dispatch guarantees any duplicate that was
   not dropped as late arrives within that window. *)
let duplicate_delivery t trace =
  if trace.Trace.ts_bef > t.dedup_ts then begin
    Hashtbl.reset t.dedup_seen;
    t.dedup_ts <- trace.Trace.ts_bef
  end;
  let key = (trace.Trace.client, trace.Trace.txn, trace.Trace.ts_bef) in
  match Hashtbl.find_opt t.dedup_seen key with
  | Some prev when prev = trace -> true
  | Some _ -> false (* same key, different op: not a duplicate *)
  | None ->
    Hashtbl.replace t.dedup_seen key trace;
    false

let rec feed t trace =
  if trace.Trace.ts_bef < t.frontier then
    invalid_arg
      (Printf.sprintf
         "Checker.feed: trace ts_bef %d is behind the frontier %d (traces \
          must be dispatched in sorted order)"
         trace.Trace.ts_bef t.frontier);
  if duplicate_delivery t trace then
    t.dup_dropped <- t.dup_dropped + 1
  else feed_fresh t trace

and feed_fresh t trace =
  t.frontier <- trace.Trace.ts_bef;
  t.traces <- t.traces + 1;
  (* Safe point: every version visible to these reads is installed. *)
  flush_deferred t ~upto:t.frontier;
  let v = vtxn t trace.Trace.txn in
  if v.first_iv = None then v.first_iv <- Some (Trace.interval trace);
  (match trace.Trace.payload with
  | Trace.Read { items; locking } -> handle_read t v trace items locking
  | Trace.Write items -> handle_write t v trace items
  | (Trace.Commit | Trace.Abort)
    when v.vstatus = Indeterminate
         || Hashtbl.mem t.resolved_ids trace.Trace.txn ->
    (* defensive: a terminal for a transaction already declared
       indeterminate (e.g. a late mark racing a delivered terminal) or
       already promoted by outcome resolution adds no obligations — the
       declaration wins *)
    ()
  | Trace.Commit -> handle_commit t v trace
  | Trace.Abort -> handle_abort t v trace);
  let live = live_size t in
  if live > t.peak_live then t.peak_live <- live;
  if t.gc_every > 0 && t.traces mod t.gc_every = 0 then run_gc t

let feed_all t traces = List.iter (feed t) traces

let finalize t =
  flush_deferred t ~upto:max_int;
  t.frontier <- max_int;
  (* read items still parked on an ambiguous writer: their reader never
     terminated, so the writer stays unresolved and the items are
     inconclusive *)
  (* lint: allow hashtbl-order — counting into a counter; commutative *)
  Hashtbl.iter
    (fun _reader entries ->
      List.iter
        (fun e ->
          if resolvable t e.a_writer then
            t.inconclusive_reads <- t.inconclusive_reads + 1)
        !entries)
    t.awaiting;
  Hashtbl.reset t.awaiting;
  t.finalized <- true;
  if t.gc_every > 0 then run_gc t

let deduced t kind from_txn to_txn = Dep.Log.mem t.log kind from_txn to_txn

let note_crashed_clients t n =
  t.ext_crashed_clients <- t.ext_crashed_clients + n

let note_late_dropped t n = t.ext_late_dropped <- t.ext_late_dropped + n
let note_lost_traces t n = t.ext_lost <- t.ext_lost + n

(* Recovery damage is deliberately NOT funnelled into [note_lost_traces]:
   a lost trace weakens what the verifier may claim about unmatched reads
   (the missing write may simply be the lost trace), but a damaged WAL
   record is the server's own confession — real recoveries detect torn
   and missing records by CRC scan.  The traces themselves are all
   present, so a post-crash read contradicting them is a {e provable}
   violation, exactly what the durability faults plant. *)
let note_restart t ~at ~replayed ~damaged =
  if at < 0 || replayed < 0 || damaged < 0 then
    invalid_arg "Checker.note_restart: negative count";
  t.ext_restarts <- t.ext_restarts + 1;
  t.ext_recovery_lost <- t.ext_recovery_lost + damaged

(* The failover channel mirrors [note_restart]: the harness (or an [L]
   trace-file marker) declares a leader change and the log suffix the
   promotion truncated.  Call it {e before} feeding traces, so lost
   transactions enter the checker already indeterminate — their commit
   traces are then inert declarations rather than obligations.  An
   honest lossy failover degrades the verdict (Inconclusive, never a
   false Violation); a failover that {e hides} its lost suffix leaves
   the checker free to prove the disappearance as a definite CR
   violation. *)
let note_failover t ~at ~epoch ~lost =
  if at < 0 then invalid_arg "Checker.note_failover: negative timestamp";
  if epoch < 1 then invalid_arg "Checker.note_failover: epoch must be >= 1";
  t.ext_failovers <- t.ext_failovers + 1;
  t.ext_lost_commits <- t.ext_lost_commits + List.length lost;
  List.iter (fun txn -> mark_lost_commit t ~txn) lost

let degradation t =
  {
    crashed_clients = t.ext_crashed_clients;
    indeterminate_txns = Hashtbl.length t.indeterminate_ids;
    dup_traces_dropped = t.dup_dropped;
    late_traces_dropped = t.ext_late_dropped;
    lost_traces = t.ext_lost;
    inconclusive_reads = t.inconclusive_reads;
    unterminated_txns =
      (* only meaningful once the stream ended: mid-run every in-flight
         transaction is legitimately unterminated *)
      (if not t.finalized then 0
       else
         (* lint: allow hashtbl-order — count-fold; commutative *)
         Hashtbl.fold
           (fun _ v acc -> if v.vstatus = Active then acc + 1 else acc)
           t.txns 0);
    restarts = t.ext_restarts;
    recovery_lost_records = t.ext_recovery_lost;
    failovers = t.ext_failovers;
    lost_suffix_commits = t.ext_lost_commits;
    ambiguous_commits =
      (* lint: allow hashtbl-order — count-fold; commutative *)
      Hashtbl.fold
        (fun id () acc ->
          if Hashtbl.mem t.resolved_ids id || Hashtbl.mem t.coord_ids id then
            acc
          else acc + 1)
        t.ambiguous_ids 0;
    coord_ambiguous_commits =
      (* lint: allow hashtbl-order — count-fold; commutative *)
      Hashtbl.fold
        (fun id () acc ->
          if Hashtbl.mem t.resolved_ids id then acc else acc + 1)
        t.coord_ids 0;
  }

let report t =
  {
    traces = t.traces;
    committed = t.committed;
    aborted = t.aborted;
    bugs_total = t.bugs_total;
    bugs = List.rev t.bugs;
    bugs_by_mechanism =
      List.sort
        (fun (ma, _) (mb, _) -> Bug.compare_mechanism ma mb)
        (Hashtbl.fold (fun m n acc -> (m, n) :: acc) t.mech_counts []);
    deps_deduced = Dep.Log.count t.log;
    deduced_by_source = Dep.Log.by_source t.log;
    reads_checked = t.reads_checked;
    peak_live = t.peak_live;
    final_live = live_size t;
    pruned_versions = t.pruned_versions;
    pruned_locks = t.pruned_locks;
    pruned_fuw = t.pruned_fuw;
    pruned_graph = t.pruned_graph;
    resolved_ambiguous = Hashtbl.length t.resolved_ids;
    degradation = degradation t;
  }

let degradation_reason d =
  let parts = [] in
  let add parts n singular plural =
    if n = 0 then parts
    else Printf.sprintf "%d %s" n (if n = 1 then singular else plural) :: parts
  in
  let parts = add parts d.crashed_clients "client crashed" "clients crashed" in
  let parts =
    add parts d.indeterminate_txns "transaction with indeterminate outcome"
      "transactions with indeterminate outcome"
  in
  let parts =
    add parts d.ambiguous_commits "commit with ambiguous outcome"
      "commits with ambiguous outcome"
  in
  let parts = add parts d.lost_traces "trace lost in collection" "traces lost in collection" in
  let parts = add parts d.late_traces_dropped "late trace dropped" "late traces dropped" in
  let parts = add parts d.dup_traces_dropped "duplicate dropped" "duplicates dropped" in
  let parts = add parts d.inconclusive_reads "read inconclusive" "reads inconclusive" in
  let parts = add parts d.unterminated_txns "transaction unterminated" "transactions unterminated" in
  let parts =
    add parts d.recovery_lost_records "wal record lost in recovery"
      "wal records lost in recovery"
  in
  let parts =
    add parts d.lost_suffix_commits "commit lost at failover"
      "commits lost at failover"
  in
  let parts =
    add parts d.coord_ambiguous_commits
      "commit orphaned by a coordinator crash"
      "commits orphaned by a coordinator crash"
  in
  String.concat ", " (List.rev parts)

let verdict (r : report) =
  if r.bugs_total > 0 then Violation
  else if degradation_free r.degradation then Verified
  else Inconclusive (degradation_reason r.degradation)
