module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Interval = Leopard_util.Interval

type status = Active | Committed | Aborted | Indeterminate

type vtxn = {
  vid : int;
  mutable first_iv : Interval.t option;
  mutable terminal_iv : Interval.t option;
  mutable vstatus : status;
  writes : (Trace.value * Interval.t) Cell.Tbl.t;  (* last write per cell *)
  mutable write_cells : Cell.t list;  (* first-write order, reversed *)
  mutable pending_deps : Dep.t list;
      (* deps waiting for this endpoint's terminal *)
}

type pending_read = {
  reader : int;
  read_iv : Interval.t;
  snapshot_iv : Interval.t;
  items : (Cell.t * Trace.value) list;
}

(* One read item whose observed value matches an unresolved indeterminate
   write, parked until the reader terminates: a *committed* reader proves
   the writer's commit took effect (outcome resolution), any other fate
   leaves the item inconclusive. *)
type await_entry = {
  a_cell : Cell.t;
  a_value : Trace.value;
  a_writer : int;
  a_read_iv : Interval.t;
  a_snapshot_iv : Interval.t;
}

type degradation = {
  crashed_clients : int;
  indeterminate_txns : int;
  dup_traces_dropped : int;
  late_traces_dropped : int;
  lost_traces : int;
  inconclusive_reads : int;
  unterminated_txns : int;
  restarts : int;
  recovery_lost_records : int;
  ambiguous_commits : int;
  failovers : int;
  lost_suffix_commits : int;
  coord_ambiguous_commits : int;
}

(* [restarts] and [failovers] are deliberately absent: a clean
   crash–recovery epoch loses nothing, and a failover whose survivor
   prefix covers the whole log loses nothing either, so multi-epoch
   traces with zero damage still earn a full [Verified].  Only actual
   losses degrade the verdict. *)
let degradation_free d =
  d.crashed_clients = 0 && d.indeterminate_txns = 0
  && d.dup_traces_dropped = 0 && d.late_traces_dropped = 0
  && d.lost_traces = 0 && d.inconclusive_reads = 0
  && d.unterminated_txns = 0 && d.recovery_lost_records = 0
  && d.ambiguous_commits = 0 && d.lost_suffix_commits = 0
  && d.coord_ambiguous_commits = 0

type report = {
  traces : int;
  committed : int;
  aborted : int;
  bugs_total : int;
  bugs : Bug.t list;
  bugs_by_mechanism : (Bug.mechanism * int) list;
  deps_deduced : int;
  deduced_by_source : (Dep.source * int) list;
  reads_checked : int;
  peak_live : int;
  final_live : int;
  pruned_versions : int;
  pruned_locks : int;
  pruned_fuw : int;
  pruned_graph : int;
  truncations : int;
  truncated_deps : int;
  resolved_ambiguous : int;
  degradation : degradation;
}

type verdict = Verified | Violation | Inconclusive of string

type t = {
  profile : Il_profile.t;
  gc_every : int;
  narrow_candidates : bool;
  relaxed_reads : bool;
  versions : Version_order.t;
  me : Me_verifier.t;
  fuw : Fuw_verifier.t;
  sc : Sc_verifier.t;
  log : Dep.Log.t;
  txns : (int, vtxn) Hashtbl.t;
  deferred : pending_read Leopard_util.Min_heap.t;
  initial_readers : int list ref Cell.Tbl.t;
      (* readers that observed a cell's untraced initial state before any
         version was known; resolved into rw edges when the cell's first
         version installs *)
  aborted_values : (Trace.value * int * int) list ref Cell.Tbl.t;
      (* (value, txn, terminal_aft) of aborted writes, kept only to
         classify violations as G1a aborted reads *)
  indeterminate_ids : (int, unit) Hashtbl.t;
      (* txns whose commit outcome the collector cannot know (crashed
         clients): excluded from ME/FUW/SC obligations, and reads
         matching their writes are inconclusive, not violations *)
  indeterminate_values : (Trace.value * int) list ref Cell.Tbl.t;
      (* (value, txn) of indeterminate writes; never pruned — a crashed
         commit may have installed them at any later point *)
  ambiguous_ids : (int, unit) Hashtbl.t;
      (* txns whose COMMIT was sent but never acknowledged (wire faults):
         indeterminate like a crashed client's, but *resolvable* — a
         later committed read observing their writes proves the commit *)
  resolved_ids : (int, unit) Hashtbl.t;
      (* indeterminate/ambiguous txns promoted to definitely-committed
         by outcome resolution; marks stay in their tables, resolution
         is recorded here *)
  lost_ids : (int, unit) Hashtbl.t;
      (* txns a failover reported lost with the truncated log suffix:
         indeterminate like a crashed client's, and — unlike ambiguous
         commits — never resolvable, because the surviving timeline
         provably does not contain them *)
  coord_ids : (int, unit) Hashtbl.t;
      (* the subset of [ambiguous_ids] whose ambiguity came from a 2PC
         coordinator crash rather than the wire: tagged only when the
         coordinator mark was the *first* to make the txn ambiguous, so
         the wire and coordinator channels partition exactly *)
  awaiting : (int, await_entry list ref) Hashtbl.t;
      (* reader txn -> read items parked on an unresolved writer *)
  dedup_seen : (int * int * int, Trace.t) Hashtbl.t;
      (* (client, txn, ts_bef) of traces at the current frontier, for
         dropping chaos-duplicated deliveries *)
  mutable dedup_ts : int;
  mutable frontier : int;
  mutable traces : int;
  mutable committed : int;
  mutable aborted : int;
  mutable bugs_total : int;
  mutable bugs : Bug.t list;  (* reversed; capped *)
  mutable reads_checked : int;
  mutable peak_live : int;
  mutable pruned_versions : int;
  mutable pruned_locks : int;
  mutable pruned_fuw : int;
  mutable pruned_graph : int;
  mutable dup_dropped : int;
  mutable inconclusive_reads : int;
  mutable ext_crashed_clients : int;
  mutable ext_late_dropped : int;
  mutable ext_lost : int;
  mutable ext_restarts : int;
  mutable ext_recovery_lost : int;
  mutable ext_failovers : int;
  mutable ext_lost_commits : int;
  mutable finalized : bool;
  mutable dep_hook : (Dep.t -> unit) option;
  mech_counts : (Bug.mechanism, int) Hashtbl.t;
  mutable truncations : int;
  mutable truncated_deps : int;
  forgotten_by_source : int array;
      (* Dep.source_rank-indexed tallies of log entries folded away by
         [truncate]; merged back into the report so truncated and
         untruncated runs agree on deps_deduced *)
}

let max_stored_bugs = 10_000

let create ?(gc_every = 512) ?(narrow_candidates = true)
    ?(relaxed_reads = false) profile =
  {
    profile;
    gc_every;
    narrow_candidates;
    relaxed_reads;
    versions = Version_order.create ();
    me = Me_verifier.create ();
    fuw = Fuw_verifier.create ();
    sc = Sc_verifier.create profile.Il_profile.check_sc;
    log = Dep.Log.create ();
    txns = Hashtbl.create 4096;
    initial_readers = Cell.Tbl.create 64;
    aborted_values = Cell.Tbl.create 64;
    indeterminate_ids = Hashtbl.create 8;
    indeterminate_values = Cell.Tbl.create 8;
    ambiguous_ids = Hashtbl.create 8;
    resolved_ids = Hashtbl.create 8;
    lost_ids = Hashtbl.create 8;
    coord_ids = Hashtbl.create 8;
    awaiting = Hashtbl.create 8;
    dedup_seen = Hashtbl.create 64;
    dedup_ts = min_int;
    deferred =
      Leopard_util.Min_heap.create ~compare:(fun a b ->
          Int.compare (Interval.aft a.read_iv) (Interval.aft b.read_iv));
    frontier = min_int;
    traces = 0;
    committed = 0;
    aborted = 0;
    bugs_total = 0;
    bugs = [];
    reads_checked = 0;
    peak_live = 0;
    pruned_versions = 0;
    pruned_locks = 0;
    pruned_fuw = 0;
    pruned_graph = 0;
    dup_dropped = 0;
    inconclusive_reads = 0;
    ext_crashed_clients = 0;
    ext_late_dropped = 0;
    ext_lost = 0;
    ext_restarts = 0;
    ext_recovery_lost = 0;
    ext_failovers = 0;
    ext_lost_commits = 0;
    finalized = false;
    dep_hook = None;
    mech_counts = Hashtbl.create 4;
    truncations = 0;
    truncated_deps = 0;
    forgotten_by_source = Array.make (List.length Dep.all_sources) 0;
  }

let set_dep_hook t f = t.dep_hook <- Some f

let vtxn t id =
  match Hashtbl.find_opt t.txns id with
  | Some v -> v
  | None ->
    let v =
      {
        vid = id;
        first_iv = None;
        terminal_iv = None;
        vstatus =
          (if
             Hashtbl.mem t.indeterminate_ids id
             || Hashtbl.mem t.lost_ids id
             || Hashtbl.mem t.ambiguous_ids id
                && not (Hashtbl.mem t.resolved_ids id)
           then Indeterminate
           else Active);
        writes = Cell.Tbl.create 8;
        write_cells = [];
        pending_deps = [];
      }
    in
    Hashtbl.replace t.txns id v;
    v

let status_of t id =
  match Hashtbl.find_opt t.txns id with
  | Some v -> v.vstatus
  | None -> Committed (* pruned transactions were terminal; treat as done *)

let report_bug t (bug : Bug.t) =
  t.bugs_total <- t.bugs_total + 1;
  Hashtbl.replace t.mech_counts bug.mechanism
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.mech_counts bug.mechanism));
  if t.bugs_total <= max_stored_bugs then t.bugs <- bug :: t.bugs

let live_size t =
  Version_order.live_versions t.versions
  + Me_verifier.live_entries t.me
  + Fuw_verifier.live_entries t.fuw
  + Sc_verifier.nodes t.sc + Sc_verifier.edges t.sc
  + Leopard_util.Min_heap.length t.deferred
  + Hashtbl.length t.txns
  + Dep.Log.count t.log

(* ------------------------------------------------------------------ *)
(* Dependency plumbing: log every deduction; forward to the certifier
   once both endpoints are committed. *)

let rec emit_dep t (d : Dep.t) =
  if d.from_txn <> d.to_txn then begin
    let fresh = Dep.Log.add t.log d in
    if fresh then begin
      (match t.dep_hook with Some f -> f d | None -> ());
      forward_dep t d
    end
  end

and forward_dep t (d : Dep.t) =
  match (status_of t d.from_txn, status_of t d.to_txn) with
  | Committed, Committed ->
    List.iter (report_bug t) (Sc_verifier.add_dep t.sc d)
  | Aborted, _ | _, Aborted -> ()
  | Indeterminate, _ | _, Indeterminate -> ()
  | Active, _ ->
    let v = vtxn t d.from_txn in
    v.pending_deps <- d :: v.pending_deps
  | _, Active ->
    let v = vtxn t d.to_txn in
    v.pending_deps <- d :: v.pending_deps

and flush_pending t v =
  let deps = v.pending_deps in
  v.pending_deps <- [];
  List.iter (forward_dep t) deps

(* ------------------------------------------------------------------ *)
(* Indeterminate transactions: a crashed client's in-flight transaction
   may or may not have committed server-side, and the trace stream cannot
   tell.  Treating it as either outcome risks false alarms, so it carries
   no obligations: its ME locks are discarded unchecked (release instant
   unknown), it joins no FUW/SC state (never registered without a commit
   trace), pending deps touching it are dropped, and reads observing one
   of its written values are inconclusive rather than violations. *)

let register_indeterminate_value t cell value vid =
  let entries =
    match Cell.Tbl.find_opt t.indeterminate_values cell with
    | Some r -> r
    | None ->
      let r = ref [] in
      Cell.Tbl.add t.indeterminate_values cell r;
      r
  in
  if not (List.mem (value, vid) !entries) then
    entries := (value, vid) :: !entries

let make_indeterminate t (v : vtxn) =
  v.vstatus <- Indeterminate;
  v.pending_deps <- [];
  Me_verifier.discard t.me ~txn:v.vid;
  (* lint: allow hashtbl-order — one binding per cell and the cells are
     registered independently; visit order cannot be observed *)
  Cell.Tbl.iter
    (fun cell (value, _) -> register_indeterminate_value t cell value v.vid)
    v.writes

let mark_indeterminate t ~txn =
  if not (Hashtbl.mem t.indeterminate_ids txn) then begin
    Hashtbl.replace t.indeterminate_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* An ambiguous commit (wire faults: COMMIT sent, acknowledgement never
   received) carries the same exclusions as a crashed client's
   transaction, but unlike the chaos plane it is {e resolvable}: the
   COMMIT was definitely issued, so a later {e committed} read observing
   one of its written values proves the engine applied it, and the
   checker promotes it to definitely-committed (outcome resolution).
   Unresolved ones surface as the [ambiguous_commits] degradation. *)
let mark_ambiguous_commit t ~txn =
  if
    (not (Hashtbl.mem t.ambiguous_ids txn))
    && not (Hashtbl.mem t.resolved_ids txn)
  then begin
    Hashtbl.replace t.ambiguous_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* A 2PC coordinator crash before the commit decision: the client can
   never learn the outcome, exactly like a wire-ambiguous commit, and it
   carries the same exclusions and the same resolution rule (the
   PREPAREs were sent, so a later committed read observing one of its
   written values proves the engine applied it).  It is tagged into a
   separate degradation channel — [coord_ambiguous_commits] — so
   coordinator give-ups and wire give-ups partition exactly: the tag is
   only added when this mark is the first to make the txn ambiguous. *)
let mark_coord_ambiguous t ~txn =
  if
    (not (Hashtbl.mem t.ambiguous_ids txn))
    && not (Hashtbl.mem t.resolved_ids txn)
  then begin
    Hashtbl.replace t.ambiguous_ids txn ();
    Hashtbl.replace t.coord_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

(* A commit on the truncated suffix of a failover.  It shares the
   exclusions of an ambiguous commit but is permanently unresolvable:
   the surviving timeline provably does not contain it, so a later read
   observing its value proves nothing about *this* timeline (the read
   may predate the promotion).  It is pulled out of the ambiguous set —
   otherwise a pre-failover read could "resolve" it and post-failover
   reads missing it would become false violations. *)
let mark_lost_commit t ~txn =
  Hashtbl.remove t.ambiguous_ids txn;
  Hashtbl.remove t.resolved_ids txn;
  Hashtbl.remove t.coord_ids txn;
  if not (Hashtbl.mem t.lost_ids txn) then begin
    Hashtbl.replace t.lost_ids txn ();
    match Hashtbl.find_opt t.txns txn with
    | Some v when v.vstatus = Active -> make_indeterminate t v
    | Some _ | None -> ()
  end

let indeterminate_writer t cell value =
  match Cell.Tbl.find_opt t.indeterminate_values cell with
  | Some entries ->
    Option.map snd (List.find_opt (fun (v, _) -> v = value) !entries)
  | None -> None

let resolvable t writer =
  Hashtbl.mem t.ambiguous_ids writer
  && not (Hashtbl.mem t.resolved_ids writer)

(* ------------------------------------------------------------------ *)
(* CR verification of one deferred read (Algorithm 2, ConsistentRead) *)

(* The §V-A cooperation optimization: among candidates certainly installed
   before the snapshot (the pivot and its overlaps), a version with a
   deduced ww successor in the same group was certainly overwritten before
   the snapshot and cannot be visible. *)
let narrow t ~snapshot candidates =
  if not t.narrow_candidates then candidates
  else begin
    let before_snapshot (v : Version_order.version) =
      Interval.certainly_before v.commit_iv snapshot
    in
    let group = List.filter before_snapshot candidates in
    List.filter
      (fun (v : Version_order.version) ->
        (not (before_snapshot v))
        || not
             (List.exists
                (fun (w : Version_order.version) ->
                  w.vtxn <> v.vtxn && Dep.Log.mem t.log Dep.Ww v.vtxn w.vtxn)
                group))
      candidates
  end

let install_versions t (v : vtxn) ~commit_iv =
  List.iter
    (fun cell ->
      match Cell.Tbl.find_opt v.writes cell with
      | None -> ()
      | Some (value, write_iv) ->
        let version =
          {
            Version_order.value;
            vtxn = v.vid;
            write_iv;
            commit_iv;
            readers = [];
          }
        in
        let is_first = ref false in
        Version_order.install t.versions cell version
          ~predecessor:(fun pred ->
            match pred with
            | None -> is_first := true
            | Some (p : Version_order.version) ->
              if
                Interval.certainly_before p.commit_iv commit_iv
                && p.vtxn <> v.vid
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = p.vtxn;
                    to_txn = v.vid;
                    source = Dep.From_version_order;
                  };
              (* Fig. 9: readers matched to the predecessor antidepend on
                 the new direct successor. *)
              List.iter
                (fun reader ->
                  if reader <> v.vid then
                    emit_dep t
                      {
                        Dep.kind = Dep.Rw;
                        from_txn = reader;
                        to_txn = v.vid;
                        source = Dep.Derived_rw;
                      })
                p.readers)
          ~successor:(fun succ ->
            match succ with
            | None ->
              (* Appended at the tail.  If it is also the very first
                 version of the cell, readers of the untraced initial
                 state antidepend on it. *)
              if !is_first then begin
                match Cell.Tbl.find_opt t.initial_readers cell with
                | Some readers ->
                  List.iter
                    (fun reader ->
                      if reader <> v.vid then
                        emit_dep t
                          {
                            Dep.kind = Dep.Rw;
                            from_txn = reader;
                            to_txn = v.vid;
                            source = Dep.Derived_rw;
                          })
                    !readers;
                  Cell.Tbl.remove t.initial_readers cell
                | None -> ()
              end
            | Some (s : Version_order.version) ->
              if
                Interval.certainly_before commit_iv s.commit_iv
                && s.vtxn <> v.vid
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = v.vid;
                    to_txn = s.vtxn;
                    source = Dep.From_version_order;
                  }))
    (List.rev v.write_cells)

let rec check_read t (pr : pending_read) =
  t.reads_checked <- t.reads_checked + 1;
  List.iter (fun (cell, value) -> check_item t pr cell value) pr.items

and check_item t (pr : pending_read) cell value =
  let chain = Version_order.chain t.versions cell in
  match chain with
  | [] -> (
    match indeterminate_writer t cell value with
    | Some writer when resolvable t writer ->
      (* no committed version, but the value matches an unacknowledged
         commit's write: resolvable once the reader's fate is known *)
      defer_or_resolve t pr cell value writer
    | Some _ ->
      (* no committed version, but the value matches an indeterminate
         write: the crashed transaction may have committed it *)
      t.inconclusive_reads <- t.inconclusive_reads + 1
    | None ->
      (* Untraced cell so far: the read observed the initial state.  If
         a first version installs later, the reader antidepends on it. *)
      let readers =
        match Cell.Tbl.find_opt t.initial_readers cell with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.initial_readers cell r;
          r
      in
      if not (List.mem pr.reader !readers) then
        readers := pr.reader :: !readers)
  | _ -> (
    let candidates =
      narrow t ~snapshot:pr.snapshot_iv
        (Candidate.candidates ~snapshot:pr.snapshot_iv chain)
    in
    let matches =
      List.filter
        (fun (v : Version_order.version) -> v.value = value)
        candidates
    in
    match matches with
    | [] -> (
      match indeterminate_writer t cell value with
      | Some writer when resolvable t writer ->
        defer_or_resolve t pr cell value writer
      | Some _ ->
        (* the value may stem from a crashed client's transaction
           whose commit outcome is unknown: neither a violation nor a
           pass can be concluded *)
        t.inconclusive_reads <- t.inconclusive_reads + 1
      | None ->
        if t.ext_lost > 0 || t.ext_late_dropped > 0 then
          (* the collection is known lossy: the observed value may stem
             from a write whose trace never reached the verifier, so a
             missing match is not evidence of a violation *)
          t.inconclusive_reads <- t.inconclusive_reads + 1
        else if Candidate.has_pivot ~snapshot:pr.snapshot_iv chain then begin
          (* classify: where did the impossible value come from? *)
          let classified =
            Candidate.classify ~snapshot:pr.snapshot_iv chain
          in
          let from_chain =
            List.find_opt
              (fun ((v : Version_order.version), _) -> v.value = value)
              classified
          in
          let anomaly =
            match from_chain with
            | Some (_, Candidate.Garbage) -> Anomaly.Stale_read
            | Some (_, Candidate.Future) -> Anomaly.Future_read
            | Some (_, (Candidate.Overlap | Candidate.Pivot
                       | Candidate.Pivot_overlap)) ->
              (* in the candidate region but excluded by ww narrowing *)
              Anomaly.Stale_read
            | None -> (
              match Cell.Tbl.find_opt t.aborted_values cell with
              | Some entries
                when List.exists (fun (v, _, _) -> v = value) !entries ->
                Anomaly.Aborted_read
              | Some _ | None -> Anomaly.Dirty_read)
          in
          report_bug t
            (Bug.make ~mechanism:Bug.Cr ~anomaly ~txns:[ pr.reader ] ~cell
               (Printf.sprintf
                  "read by txn %d observed value %d on %s, which matches \
                   no possibly-visible version (%d candidates, %d known \
                   versions)"
                  pr.reader value (Cell.to_string cell)
                  (List.length candidates) (List.length chain)))
        end
        else begin
          (* No pivot: the read observed the untraced initial state.
             When the oldest known version is certainly the first, it
             is the initial state's direct successor, so the read
             antidepends on its writer (Fig. 9 applied to the initial
             version).  No pivot also implies nothing was pruned for
             this cell, so the chain head is the genuine first
             version. *)
          match chain with
          | first :: rest
            when first.Version_order.vtxn <> pr.reader
                 && (match rest with
                    | [] -> true
                    | second :: _ ->
                      Interval.certainly_before first.Version_order.commit_iv
                        second.Version_order.commit_iv) ->
            emit_dep t
              {
                Dep.kind = Dep.Rw;
                from_txn = pr.reader;
                to_txn = first.Version_order.vtxn;
                source = Dep.Derived_rw;
              }
          | _ -> ()
        end)
    | [ v ] ->
      if v.vtxn <> pr.reader then begin
        emit_dep t
          {
            Dep.kind = Dep.Wr;
            from_txn = v.vtxn;
            to_txn = pr.reader;
            source = Dep.From_cr;
          };
        (* register for future rw derivation *)
        if not (List.mem pr.reader v.readers) then
          v.readers <- pr.reader :: v.readers;
        (* rw to an already-known direct successor *)
        let rec successor = function
          | a :: b :: rest ->
            if a == v then Some b else successor (b :: rest)
          | [ _ ] | [] -> None
        in
        match successor chain with
        | Some (s : Version_order.version) when s.vtxn <> pr.reader ->
          emit_dep t
            {
              Dep.kind = Dep.Rw;
              from_txn = pr.reader;
              to_txn = s.vtxn;
              source = Dep.Derived_rw;
            }
        | Some _ | None -> ()
      end
    | _ :: _ :: _ -> ()  (* ambiguous match: uncertain, no deduction *))

(* Outcome resolution (the wire layer's counterpart to Algorithm 2): a
   read item matching an unresolved ambiguous commit is settled by the
   {e reader's} fate.  A committed reader is proof the writer's commit
   took effect — the engine served the value to a transaction that went
   on to commit, which no engine at read-committed or above does for an
   unapplied write — so the writer is promoted and the item re-checked
   against the now-installed version.  Any other fate for the reader
   (aborted, itself indeterminate, never terminated) leaves the item
   inconclusive, exactly as PR 1's blanket exclusion would have. *)
and defer_or_resolve t (pr : pending_read) cell value writer =
  match status_of t pr.reader with
  | Committed ->
    if promote_ambiguous t writer ~observed_aft:(Interval.aft pr.read_iv) then
      check_item t pr cell value
    else t.inconclusive_reads <- t.inconclusive_reads + 1
  | Active ->
    let entries =
      match Hashtbl.find_opt t.awaiting pr.reader with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace t.awaiting pr.reader r;
        r
    in
    entries :=
      {
        a_cell = cell;
        a_value = value;
        a_writer = writer;
        a_read_iv = pr.read_iv;
        a_snapshot_iv = pr.snapshot_iv;
      }
      :: !entries
  | Aborted | Indeterminate ->
    t.inconclusive_reads <- t.inconclusive_reads + 1

(* Promote an ambiguous commit to definitely-committed.  The commit
   interval is deliberately wide — from the writer's first operation to
   the observing read's end — which only ever {e adds} visibility
   candidates downstream, so the promotion cannot manufacture a
   violation out of uncertainty.  ME and FUW obligations stay waived
   (their release/registration instants are unknowable), matching the
   conservative treatment of indeterminate transactions. *)
and promote_ambiguous t writer ~observed_aft =
  match Hashtbl.find_opt t.txns writer with
  | Some w when w.vstatus = Indeterminate && resolvable t writer ->
    (* lint: allow hashtbl-order — in-place per-key filter; no state
       crosses from one binding to the next *)
    Cell.Tbl.iter
      (fun _cell entries ->
        entries := List.filter (fun (_, id) -> id <> writer) !entries)
      t.indeterminate_values;
    Hashtbl.replace t.resolved_ids writer ();
    w.vstatus <- Committed;
    t.committed <- t.committed + 1;
    let bef =
      match w.first_iv with
      | Some f -> min (Interval.bef f) (observed_aft - 1)
      | None -> observed_aft - 1
    in
    let commit_iv = Interval.make ~bef ~aft:observed_aft in
    w.terminal_iv <- Some commit_iv;
    let first_iv = match w.first_iv with Some f -> f | None -> commit_iv in
    if t.profile.Il_profile.check_sc <> None then
      Sc_verifier.note_commit t.sc ~txn:w.vid ~first_iv ~terminal_iv:commit_iv;
    if t.profile.Il_profile.check_cr <> None then
      install_versions t w ~commit_iv;
    flush_pending t w;
    true
  | Some _ | None -> false

(* Settle the read items parked on ambiguous writers once their reader
   terminates.  Called from the terminal-trace handlers and finalize. *)
and resolve_awaiting t (v : vtxn) ~committed =
  match Hashtbl.find_opt t.awaiting v.vid with
  | None -> ()
  | Some entries ->
    Hashtbl.remove t.awaiting v.vid;
    List.iter
      (fun e ->
        if committed then begin
          let pr =
            {
              reader = v.vid;
              read_iv = e.a_read_iv;
              snapshot_iv = e.a_snapshot_iv;
              items = [];
            }
          in
          if resolvable t e.a_writer then begin
            if
              promote_ambiguous t e.a_writer
                ~observed_aft:(Interval.aft e.a_read_iv)
            then check_item t pr e.a_cell e.a_value
            else t.inconclusive_reads <- t.inconclusive_reads + 1
          end
          else
            (* already promoted by another reader: re-check against the
               installed version *)
            check_item t pr e.a_cell e.a_value
        end
        else if resolvable t e.a_writer then
          t.inconclusive_reads <- t.inconclusive_reads + 1)
      (List.rev !entries)

let flush_deferred t ~upto =
  let ready =
    Leopard_util.Min_heap.drain_while t.deferred (fun pr ->
        Interval.aft pr.read_iv <= upto)
  in
  List.iter (check_read t) ready

(* ------------------------------------------------------------------ *)
(* GC *)

let horizon t =
  let h =
    (* lint: allow hashtbl-order — min-fold; commutative and associative *)
    Hashtbl.fold
      (fun _ v acc ->
        match (v.vstatus, v.first_iv) with
        | Active, Some iv -> min acc (Interval.bef iv)
        | _ -> acc)
      t.txns t.frontier
  in
  (* Defensive: a deferred read normally belongs to an active transaction
     (its terminal trace cannot start before the read ends at a sequential
     client), but hostile histories can violate that; never prune past a
     queued read's snapshot. *)
  List.fold_left
    (fun acc pr -> min acc (Interval.bef pr.snapshot_iv))
    h
    (Leopard_util.Min_heap.to_sorted_list t.deferred)

let prune_to t h =
  t.pruned_versions <-
    t.pruned_versions + Version_order.prune t.versions ~horizon:h;
  t.pruned_locks <- t.pruned_locks + Me_verifier.prune t.me ~horizon:h;
  t.pruned_fuw <- t.pruned_fuw + Fuw_verifier.prune t.fuw ~horizon:h;
  t.pruned_graph <- t.pruned_graph + Sc_verifier.gc t.sc ~frontier:h;
  (* lint: allow hashtbl-order — in-place per-key prune, keys independent *)
  Cell.Tbl.iter
    (fun _cell entries ->
      entries := List.filter (fun (_, _, aft) -> aft > h) !entries)
    t.aborted_values;
  (* prune terminated transaction records behind the horizon *)
  let victims =
    (* lint: allow hashtbl-order — collects a removal set; every victim is
       removed whatever the fold order *)
    Hashtbl.fold
      (fun id v acc ->
        match (v.vstatus, v.terminal_iv) with
        | (Committed | Aborted), Some iv when Interval.aft iv <= h ->
          id :: acc
        | _ -> acc)
      t.txns []
  in
  List.iter (Hashtbl.remove t.txns) victims

let run_gc t = prune_to t (horizon t)

(* ------------------------------------------------------------------ *)
(* Truncation: fold the verified prefix into the compact summary.

   [prune_to] already bounds the four mechanism mirrors, the deferred
   heap and the transaction table; the one genuinely unbounded structure
   left is the deduction log, whose entries are never removed because
   [emit_dep] uses it to deduplicate re-deductions and [narrow] queries
   ww edges between live chain versions.  Both uses only ever mention
   transactions that appear in some live structure: a dependency can be
   re-deduced only from live versions/readers/lock entries/FUW
   entries/initial readers, and [narrow] only asks about live chain
   versions.  So once a transaction has vanished from every live
   structure, its log entries can be folded into accumulated tallies
   and dropped — the summary keeps the counts (so reports agree with an
   untruncated run) while the memory is reclaimed. *)

let truncate t ~watermark =
  let h = min watermark (horizon t) in
  prune_to t h;
  let retained = Hashtbl.create 1024 in
  let keep id = Hashtbl.replace retained id () in
  (* lint: allow hashtbl-order — building a membership set; commutative *)
  Hashtbl.iter (fun id _ -> keep id) t.txns;
  List.iter keep (Version_order.referenced_txns t.versions);
  List.iter keep (Me_verifier.referenced_txns t.me);
  List.iter keep (Fuw_verifier.referenced_txns t.fuw);
  List.iter keep (Sc_verifier.referenced_txns t.sc);
  (* lint: allow hashtbl-order — building a membership set; commutative *)
  Cell.Tbl.iter (fun _ readers -> List.iter keep !readers) t.initial_readers;
  List.iter
    (fun pr -> keep pr.reader)
    (Leopard_util.Min_heap.to_sorted_list t.deferred);
  (* lint: allow hashtbl-order — building a membership set; commutative *)
  Hashtbl.iter
    (fun reader entries ->
      keep reader;
      List.iter (fun e -> keep e.a_writer) !entries)
    t.awaiting;
  (* marked transactions can still be promoted (outcome resolution) or
     re-queried; their ids stay in the open sets of the summary *)
  List.iter
    (fun ids ->
      (* lint: allow hashtbl-order — building a membership set; commutative *)
      Hashtbl.iter (fun id () -> keep id) ids)
    [ t.indeterminate_ids; t.ambiguous_ids; t.resolved_ids; t.lost_ids;
      t.coord_ids ];
  (* lint: allow hashtbl-order — building a membership set; commutative *)
  Cell.Tbl.iter
    (fun _ entries -> List.iter (fun (_, id) -> keep id) !entries)
    t.indeterminate_values;
  List.iter
    (fun id ->
      if not (Hashtbl.mem retained id) then
        List.iter
          (fun (d : Dep.t) ->
            t.truncated_deps <- t.truncated_deps + 1;
            let r = Dep.source_rank d.source in
            t.forgotten_by_source.(r) <- t.forgotten_by_source.(r) + 1)
          (Dep.Log.take_txn t.log id))
    (Dep.Log.txns t.log);
  t.truncations <- t.truncations + 1

(* ------------------------------------------------------------------ *)
(* Trace handlers *)

let me_granule t (cell : Cell.t) =
  match t.profile.Il_profile.lock_granularity with
  | Il_profile.Row_locks -> Cell.row_key cell
  | Il_profile.Table_locks -> (cell.Cell.table, -1)

let me_on_pair t ~row ~(mine : Me_verifier.entry) ~(other : Me_verifier.entry)
    verdict =
  match verdict with
  | Me_verifier.Violation ->
    let anomaly =
      if mine.mode = Me_verifier.X && other.mode = Me_verifier.X then
        Anomaly.Dirty_write
      else Anomaly.Read_lock_violation
    in
    report_bug t
      (Bug.make ~mechanism:Bug.Me ~anomaly ~txns:[ mine.etxn; other.etxn ] ~row
         (Printf.sprintf
            "incompatible locks on row (t%d,r%d): transactions %d and %d \
             certainly held conflicting locks simultaneously"
            (fst row) (snd row) mine.etxn other.etxn))
  | Me_verifier.Ww (first, second) ->
    if status_of t first = Committed && status_of t second = Committed then
      emit_dep t
        {
          Dep.kind = Dep.Ww;
          from_txn = first;
          to_txn = second;
          source = Dep.From_me;
        }
  | Me_verifier.Unordered -> ()

let handle_read t (v : vtxn) trace items locking =
  let iv = Trace.interval trace in
  (* mutual exclusion entries *)
  let p = t.profile in
  let rows =
    List.sort_uniq Cell.compare_row_key
      (List.map (fun (i : Trace.item) -> me_granule t i.cell) items)
  in
  if p.Il_profile.check_me && v.vstatus <> Indeterminate then begin
    if locking && p.Il_profile.me_locking_reads then
      List.iter
        (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.X ~iv)
        rows
    else if (not locking) && p.Il_profile.me_reads then
      List.iter
        (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.S ~iv)
        rows
  end;
  match p.Il_profile.check_cr with
  | None -> ()
  | Some granularity ->
    let snapshot_iv =
      match granularity with
      | Il_profile.Stmt_snapshot ->
        if t.relaxed_reads then
          (* claim compatibility: any snapshot between transaction begin
             and this statement may have served the read *)
          match v.first_iv with
          | Some f -> Interval.make ~bef:(Interval.bef f) ~aft:(Interval.aft iv)
          | None -> iv
        else iv
      | Il_profile.Txn_snapshot -> (
        match v.first_iv with Some f -> f | None -> iv)
    in
    (* Case 1 of CR: an operation must see the transaction's own earlier
       writes.  Items on cells this transaction wrote must return the
       latest own value; other items go through candidate matching once
       the frontier passes the read. *)
    let deferred_items =
      List.filter_map
        (fun (i : Trace.item) ->
          match Cell.Tbl.find_opt v.writes i.cell with
          | Some (own_value, _) ->
            if i.value <> own_value then
              report_bug t
                (Bug.make ~mechanism:Bug.Cr ~anomaly:Anomaly.Intermediate_read
                   ~txns:[ v.vid ] ~cell:i.cell
                   (Printf.sprintf
                      "read by txn %d observed value %d on %s although the \
                       transaction's own latest write installed %d"
                      v.vid i.value (Cell.to_string i.cell) own_value));
            None
          | None -> Some (i.cell, i.value))
        items
    in
    if deferred_items <> [] then
      Leopard_util.Min_heap.push t.deferred
        {
          reader = v.vid;
          read_iv = iv;
          snapshot_iv;
          items = deferred_items;
        }

let handle_write t (v : vtxn) trace items =
  let iv = Trace.interval trace in
  let p = t.profile in
  List.iter
    (fun (i : Trace.item) ->
      if not (Cell.Tbl.mem v.writes i.cell) then
        v.write_cells <- i.cell :: v.write_cells;
      Cell.Tbl.replace v.writes i.cell (i.value, iv);
      if v.vstatus = Indeterminate then
        register_indeterminate_value t i.cell i.value v.vid)
    items;
  if p.Il_profile.check_me && v.vstatus <> Indeterminate then begin
    let rows =
      List.sort_uniq Cell.compare_row_key
        (List.map (fun (i : Trace.item) -> me_granule t i.cell) items)
    in
    List.iter
      (fun row -> Me_verifier.acquire t.me ~row ~txn:v.vid Me_verifier.X ~iv)
      rows
  end

let handle_commit t (v : vtxn) trace =
  let commit_iv = Trace.interval trace in
  v.terminal_iv <- Some commit_iv;
  v.vstatus <- Committed;
  t.committed <- t.committed + 1;
  let first_iv =
    match v.first_iv with Some f -> f | None -> commit_iv
  in
  if t.profile.Il_profile.check_sc <> None then
    Sc_verifier.note_commit t.sc ~txn:v.vid ~first_iv ~terminal_iv:commit_iv;
  (* lock releases + pair checks *)
  if t.profile.Il_profile.check_me then
    Me_verifier.release t.me ~txn:v.vid ~iv:commit_iv ~on_pair:(me_on_pair t);
  (* version installation (CR mirror) *)
  if t.profile.Il_profile.check_cr <> None then
    install_versions t v ~commit_iv;
  (* FUW registration and pair checks *)
  if t.profile.Il_profile.check_fuw && v.write_cells <> [] then begin
    let rows =
      List.sort_uniq Cell.compare_row_key (List.map Cell.row_key v.write_cells)
    in
    let entry =
      { Fuw_verifier.ftxn = v.vid; snapshot_iv = first_iv; commit_iv }
    in
    List.iter
      (fun row ->
        Fuw_verifier.register t.fuw ~row entry ~on_pair:(fun ~row ~other verdict ->
            match verdict with
            | Fuw_verifier.Violation ->
              report_bug t
                (Bug.make ~mechanism:Bug.Fuw ~anomaly:Anomaly.Lost_update
                   ~txns:[ other.ftxn; v.vid ] ~row
                   (Printf.sprintf
                      "first-updater-wins violated on row (t%d,r%d): \
                       concurrent transactions %d and %d both committed \
                       updates"
                      (fst row) (snd row) other.ftxn v.vid))
            | Fuw_verifier.Ww (first, second) ->
              if
                status_of t first = Committed
                && status_of t second = Committed
              then
                emit_dep t
                  {
                    Dep.kind = Dep.Ww;
                    from_txn = first;
                    to_txn = second;
                    source = Dep.From_fuw;
                  }
            | Fuw_verifier.Unordered -> ()))
      rows
  end;
  flush_pending t v;
  resolve_awaiting t v ~committed:true

let handle_abort t (v : vtxn) trace =
  let iv = Trace.interval trace in
  v.terminal_iv <- Some iv;
  v.vstatus <- Aborted;
  t.aborted <- t.aborted + 1;
  v.pending_deps <- [];
  (* lint: allow hashtbl-order — one binding per written cell, each moved
     to its own aborted-values entry; bindings never interact *)
  Cell.Tbl.iter
    (fun cell (value, _) ->
      let entries =
        match Cell.Tbl.find_opt t.aborted_values cell with
        | Some r -> r
        | None ->
          let r = ref [] in
          Cell.Tbl.add t.aborted_values cell r;
          r
      in
      entries := (value, v.vid, Interval.aft iv) :: !entries)
    v.writes;
  if t.profile.Il_profile.check_me then
    Me_verifier.release t.me ~txn:v.vid ~iv ~on_pair:(me_on_pair t);
  resolve_awaiting t v ~committed:false

(* ------------------------------------------------------------------ *)

(* Duplicate deliveries (chaos / retrying shippers) are deduped by
   (client, txn, ts_bef): a client issues at most one op at a given
   instant, so two structurally equal traces under that key are one
   delivery seen twice.  Keys are only retained while the frontier sits
   at their ts_bef — sorted dispatch guarantees any duplicate that was
   not dropped as late arrives within that window. *)
let duplicate_delivery t trace =
  if trace.Trace.ts_bef > t.dedup_ts then begin
    Hashtbl.reset t.dedup_seen;
    t.dedup_ts <- trace.Trace.ts_bef
  end;
  let key = (trace.Trace.client, trace.Trace.txn, trace.Trace.ts_bef) in
  match Hashtbl.find_opt t.dedup_seen key with
  | Some prev when prev = trace -> true
  | Some _ -> false (* same key, different op: not a duplicate *)
  | None ->
    Hashtbl.replace t.dedup_seen key trace;
    false

let rec feed t trace =
  if trace.Trace.ts_bef < t.frontier then
    invalid_arg
      (Printf.sprintf
         "Checker.feed: trace ts_bef %d is behind the frontier %d (traces \
          must be dispatched in sorted order)"
         trace.Trace.ts_bef t.frontier);
  if duplicate_delivery t trace then
    t.dup_dropped <- t.dup_dropped + 1
  else feed_fresh t trace

and feed_fresh t trace =
  t.frontier <- trace.Trace.ts_bef;
  t.traces <- t.traces + 1;
  (* Safe point: every version visible to these reads is installed. *)
  flush_deferred t ~upto:t.frontier;
  let v = vtxn t trace.Trace.txn in
  if v.first_iv = None then v.first_iv <- Some (Trace.interval trace);
  (match trace.Trace.payload with
  | Trace.Read { items; locking } -> handle_read t v trace items locking
  | Trace.Write items -> handle_write t v trace items
  | (Trace.Commit | Trace.Abort)
    when v.vstatus = Indeterminate
         || Hashtbl.mem t.resolved_ids trace.Trace.txn ->
    (* defensive: a terminal for a transaction already declared
       indeterminate (e.g. a late mark racing a delivered terminal) or
       already promoted by outcome resolution adds no obligations — the
       declaration wins *)
    ()
  | Trace.Commit -> handle_commit t v trace
  | Trace.Abort -> handle_abort t v trace);
  let live = live_size t in
  if live > t.peak_live then t.peak_live <- live;
  if t.gc_every > 0 && t.traces mod t.gc_every = 0 then run_gc t

let feed_all t traces = List.iter (feed t) traces

let finalize t =
  flush_deferred t ~upto:max_int;
  t.frontier <- max_int;
  (* read items still parked on an ambiguous writer: their reader never
     terminated, so the writer stays unresolved and the items are
     inconclusive *)
  (* lint: allow hashtbl-order — counting into a counter; commutative *)
  Hashtbl.iter
    (fun _reader entries ->
      List.iter
        (fun e ->
          if resolvable t e.a_writer then
            t.inconclusive_reads <- t.inconclusive_reads + 1)
        !entries)
    t.awaiting;
  Hashtbl.reset t.awaiting;
  t.finalized <- true;
  if t.gc_every > 0 then run_gc t

let deduced t kind from_txn to_txn = Dep.Log.mem t.log kind from_txn to_txn

let note_crashed_clients t n =
  t.ext_crashed_clients <- t.ext_crashed_clients + n

let note_late_dropped t n = t.ext_late_dropped <- t.ext_late_dropped + n
let note_lost_traces t n = t.ext_lost <- t.ext_lost + n

(* Recovery damage is deliberately NOT funnelled into [note_lost_traces]:
   a lost trace weakens what the verifier may claim about unmatched reads
   (the missing write may simply be the lost trace), but a damaged WAL
   record is the server's own confession — real recoveries detect torn
   and missing records by CRC scan.  The traces themselves are all
   present, so a post-crash read contradicting them is a {e provable}
   violation, exactly what the durability faults plant. *)
let note_restart t ~at ~replayed ~damaged =
  if at < 0 || replayed < 0 || damaged < 0 then
    invalid_arg "Checker.note_restart: negative count";
  t.ext_restarts <- t.ext_restarts + 1;
  t.ext_recovery_lost <- t.ext_recovery_lost + damaged

(* The failover channel mirrors [note_restart]: the harness (or an [L]
   trace-file marker) declares a leader change and the log suffix the
   promotion truncated.  Call it {e before} feeding traces, so lost
   transactions enter the checker already indeterminate — their commit
   traces are then inert declarations rather than obligations.  An
   honest lossy failover degrades the verdict (Inconclusive, never a
   false Violation); a failover that {e hides} its lost suffix leaves
   the checker free to prove the disappearance as a definite CR
   violation. *)
let note_failover t ~at ~epoch ~lost =
  if at < 0 then invalid_arg "Checker.note_failover: negative timestamp";
  if epoch < 1 then invalid_arg "Checker.note_failover: epoch must be >= 1";
  t.ext_failovers <- t.ext_failovers + 1;
  t.ext_lost_commits <- t.ext_lost_commits + List.length lost;
  List.iter (fun txn -> mark_lost_commit t ~txn) lost

let degradation t =
  {
    crashed_clients = t.ext_crashed_clients;
    indeterminate_txns = Hashtbl.length t.indeterminate_ids;
    dup_traces_dropped = t.dup_dropped;
    late_traces_dropped = t.ext_late_dropped;
    lost_traces = t.ext_lost;
    inconclusive_reads = t.inconclusive_reads;
    unterminated_txns =
      (* only meaningful once the stream ended: mid-run every in-flight
         transaction is legitimately unterminated *)
      (if not t.finalized then 0
       else
         (* lint: allow hashtbl-order — count-fold; commutative *)
         Hashtbl.fold
           (fun _ v acc -> if v.vstatus = Active then acc + 1 else acc)
           t.txns 0);
    restarts = t.ext_restarts;
    recovery_lost_records = t.ext_recovery_lost;
    failovers = t.ext_failovers;
    lost_suffix_commits = t.ext_lost_commits;
    ambiguous_commits =
      (* lint: allow hashtbl-order — count-fold; commutative *)
      Hashtbl.fold
        (fun id () acc ->
          if Hashtbl.mem t.resolved_ids id || Hashtbl.mem t.coord_ids id then
            acc
          else acc + 1)
        t.ambiguous_ids 0;
    coord_ambiguous_commits =
      (* lint: allow hashtbl-order — count-fold; commutative *)
      Hashtbl.fold
        (fun id () acc ->
          if Hashtbl.mem t.resolved_ids id then acc else acc + 1)
        t.coord_ids 0;
  }

let report t =
  {
    traces = t.traces;
    committed = t.committed;
    aborted = t.aborted;
    bugs_total = t.bugs_total;
    bugs = List.rev t.bugs;
    bugs_by_mechanism =
      List.sort
        (fun (ma, _) (mb, _) -> Bug.compare_mechanism ma mb)
        (Hashtbl.fold (fun m n acc -> (m, n) :: acc) t.mech_counts []);
    deps_deduced = Dep.Log.count t.log + t.truncated_deps;
    deduced_by_source =
      (let live = Dep.Log.by_source t.log in
       List.filter_map
         (fun s ->
           let l = Option.value ~default:0 (List.assoc_opt s live) in
           let n = l + t.forgotten_by_source.(Dep.source_rank s) in
           if n = 0 then None else Some (s, n))
         Dep.all_sources);
    reads_checked = t.reads_checked;
    peak_live = t.peak_live;
    final_live = live_size t;
    pruned_versions = t.pruned_versions;
    pruned_locks = t.pruned_locks;
    pruned_fuw = t.pruned_fuw;
    pruned_graph = t.pruned_graph;
    truncations = t.truncations;
    truncated_deps = t.truncated_deps;
    resolved_ambiguous = Hashtbl.length t.resolved_ids;
    degradation = degradation t;
  }

let degradation_reason d =
  let parts = [] in
  let add parts n singular plural =
    if n = 0 then parts
    else Printf.sprintf "%d %s" n (if n = 1 then singular else plural) :: parts
  in
  let parts = add parts d.crashed_clients "client crashed" "clients crashed" in
  let parts =
    add parts d.indeterminate_txns "transaction with indeterminate outcome"
      "transactions with indeterminate outcome"
  in
  let parts =
    add parts d.ambiguous_commits "commit with ambiguous outcome"
      "commits with ambiguous outcome"
  in
  let parts = add parts d.lost_traces "trace lost in collection" "traces lost in collection" in
  let parts = add parts d.late_traces_dropped "late trace dropped" "late traces dropped" in
  let parts = add parts d.dup_traces_dropped "duplicate dropped" "duplicates dropped" in
  let parts = add parts d.inconclusive_reads "read inconclusive" "reads inconclusive" in
  let parts = add parts d.unterminated_txns "transaction unterminated" "transactions unterminated" in
  let parts =
    add parts d.recovery_lost_records "wal record lost in recovery"
      "wal records lost in recovery"
  in
  let parts =
    add parts d.lost_suffix_commits "commit lost at failover"
      "commits lost at failover"
  in
  let parts =
    add parts d.coord_ambiguous_commits
      "commit orphaned by a coordinator crash"
      "commits orphaned by a coordinator crash"
  in
  String.concat ", " (List.rev parts)

let verdict (r : report) =
  if r.bugs_total > 0 then Violation
  else if degradation_free r.degradation then Verified
  else Inconclusive (degradation_reason r.degradation)

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: serialize the full live state (compact after
   [truncate]) as tagged, tab-separated lines, deterministically — every
   hashtable is dumped in a sorted order, every semantically ordered
   list (chain order, lock-entry order, pending deps, deferred heap,
   reader lists) keeps its exact order, so a decoded checker replays the
   remaining stream byte-identically to an uninterrupted run.  The
   surrounding container (framing, checksums, fingerprint) is
   [Leopard_trace.Ckpt]'s job; here a malformed line is simply an
   [Error]. *)

let status_code = function
  | Active -> "active"
  | Committed -> "committed"
  | Aborted -> "aborted"
  | Indeterminate -> "indeterminate"

let status_of_code = function
  | "active" -> Active
  | "committed" -> Committed
  | "aborted" -> Aborted
  | "indeterminate" -> Indeterminate
  | s -> failwith ("Checker: unknown status " ^ s)

let mechanism_of_string = function
  | "CR" -> Bug.Cr
  | "ME" -> Bug.Me
  | "FUW" -> Bug.Fuw
  | "SC" -> Bug.Sc
  | s -> failwith ("Checker: unknown mechanism " ^ s)

let anomaly_of_string s =
  match List.find_opt (fun a -> String.equal (Anomaly.to_string a) s) Anomaly.all with
  | Some a -> a
  | None -> failwith ("Checker: unknown anomaly " ^ s)

let iv_fields iv =
  Printf.sprintf "%d\t%d" (Interval.bef iv) (Interval.aft iv)

let opt_iv_fields = function Some iv -> iv_fields iv | None -> "-\t-"

let parse_iv b a = Interval.make ~bef:(int_of_string b) ~aft:(int_of_string a)

let parse_opt_iv b a =
  match (b, a) with "-", "-" -> None | b, a -> Some (parse_iv b a)

let encode t =
  let buf = ref [] in
  let line s = buf := s :: !buf in
  line
    (Printf.sprintf "h\t%s\t%d\t%b\t%b" t.profile.Il_profile.name t.gc_every
       t.narrow_candidates t.relaxed_reads);
  line
    (String.concat "\t"
       ("s"
       :: List.map string_of_int
            [
              t.frontier; t.dedup_ts; t.traces; t.committed; t.aborted;
              t.bugs_total; t.reads_checked; t.peak_live; t.pruned_versions;
              t.pruned_locks; t.pruned_fuw; t.pruned_graph; t.dup_dropped;
              t.inconclusive_reads; t.ext_crashed_clients; t.ext_late_dropped;
              t.ext_lost; t.ext_restarts; t.ext_recovery_lost; t.ext_failovers;
              t.ext_lost_commits;
              (if t.finalized then 1 else 0);
              t.truncations; t.truncated_deps;
            ]));
  line
    ("fs\t"
    ^ String.concat "\t"
        (List.map string_of_int (Array.to_list t.forgotten_by_source)));
  Hashtbl.fold (fun m n acc -> (m, n) :: acc) t.mech_counts []
  |> List.sort (fun (a, _) (b, _) -> Bug.compare_mechanism a b)
  |> List.iter (fun (m, n) ->
         line (Printf.sprintf "mc\t%s\t%d" (Bug.mechanism_to_string m) n));
  List.iter
    (fun (b : Bug.t) ->
      line
        (Printf.sprintf "b\t%s\t%s\t%s\t%s\t%s\t%s"
           (Bug.mechanism_to_string b.mechanism)
           (match b.anomaly with Some a -> Anomaly.to_string a | None -> "-")
           (String.concat "," (List.map string_of_int b.txns))
           (match b.cell with
           | Some (c : Cell.t) ->
             Printf.sprintf "%d,%d,%d" c.Cell.table c.Cell.row c.Cell.col
           | None -> "-")
           (match b.row with
           | Some (tb, r) -> Printf.sprintf "%d,%d" tb r
           | None -> "-")
           (String.escaped b.detail)))
    (List.rev t.bugs);
  Hashtbl.fold (fun _ v acc -> v :: acc) t.txns []
  |> List.sort (fun a b -> Int.compare a.vid b.vid)
  |> List.iter (fun v ->
         line
           (Printf.sprintf "x\t%d\t%s\t%s\t%s" v.vid (status_code v.vstatus)
              (opt_iv_fields v.first_iv)
              (opt_iv_fields v.terminal_iv));
         List.iter
           (fun (cell : Cell.t) ->
             match Cell.Tbl.find_opt v.writes cell with
             | Some (value, iv) ->
               line
                 (Printf.sprintf "xw\t%d\t%d\t%d\t%d\t%d\t%s" v.vid
                    cell.Cell.table cell.Cell.row cell.Cell.col value
                    (iv_fields iv))
             | None -> ())
           (List.rev v.write_cells);
         List.iter
           (fun (d : Dep.t) ->
             line
               (Printf.sprintf "xd\t%d\t%s\t%d\t%d\t%s" v.vid
                  (Dep.kind_to_string d.kind)
                  d.from_txn d.to_txn
                  (Dep.source_to_string d.source)))
           v.pending_deps);
  List.iter
    (fun pr ->
      line
        (Printf.sprintf "df\t%d\t%s\t%s\t%s" pr.reader (iv_fields pr.read_iv)
           (iv_fields pr.snapshot_iv)
           (String.concat ";"
              (List.map
                 (fun ((c : Cell.t), v) ->
                   Printf.sprintf "%d,%d,%d,%d" c.Cell.table c.Cell.row
                     c.Cell.col v)
                 pr.items))))
    (Leopard_util.Min_heap.to_sorted_list t.deferred);
  Cell.Tbl.fold (fun cell r acc -> (cell, !r) :: acc) t.initial_readers []
  |> List.sort (fun (a, _) (b, _) -> Cell.compare a b)
  |> List.iter (fun ((c : Cell.t), readers) ->
         line
           (Printf.sprintf "ir\t%d\t%d\t%d\t%s" c.Cell.table c.Cell.row
              c.Cell.col
              (String.concat "," (List.map string_of_int readers))));
  Cell.Tbl.fold (fun cell r acc -> (cell, !r) :: acc) t.aborted_values []
  |> List.sort (fun (a, _) (b, _) -> Cell.compare a b)
  |> List.iter (fun ((c : Cell.t), entries) ->
         line
           (Printf.sprintf "av\t%d\t%d\t%d\t%s" c.Cell.table c.Cell.row
              c.Cell.col
              (String.concat ";"
                 (List.map
                    (fun (value, txn, aft) ->
                      Printf.sprintf "%d,%d,%d" value txn aft)
                    entries))));
  Cell.Tbl.fold (fun cell r acc -> (cell, !r) :: acc) t.indeterminate_values []
  |> List.sort (fun (a, _) (b, _) -> Cell.compare a b)
  |> List.iter (fun ((c : Cell.t), entries) ->
         line
           (Printf.sprintf "nv\t%d\t%d\t%d\t%s" c.Cell.table c.Cell.row
              c.Cell.col
              (String.concat ";"
                 (List.map
                    (fun (value, txn) -> Printf.sprintf "%d,%d" value txn)
                    entries))));
  let id_set name ids =
    let sorted =
      Hashtbl.fold (fun id () acc -> id :: acc) ids []
      |> List.sort Int.compare
    in
    line
      (Printf.sprintf "id\t%s\t%s" name
         (String.concat "," (List.map string_of_int sorted)))
  in
  id_set "indeterminate" t.indeterminate_ids;
  id_set "ambiguous" t.ambiguous_ids;
  id_set "resolved" t.resolved_ids;
  id_set "lost" t.lost_ids;
  id_set "coord" t.coord_ids;
  Hashtbl.fold (fun reader entries acc -> (reader, !entries) :: acc) t.awaiting []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (reader, entries) ->
         line
           (Printf.sprintf "aw\t%d\t%s" reader
              (String.concat ";"
                 (List.map
                    (fun e ->
                      Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d"
                        e.a_cell.Cell.table e.a_cell.Cell.row e.a_cell.Cell.col
                        e.a_value e.a_writer (Interval.bef e.a_read_iv)
                        (Interval.aft e.a_read_iv)
                        (Interval.bef e.a_snapshot_iv)
                        (Interval.aft e.a_snapshot_iv))
                    entries))));
  Hashtbl.fold
    (fun _ tr acc -> Leopard_trace.Codec.to_line tr :: acc)
    t.dedup_seen []
  |> List.sort String.compare
  |> List.iter (fun l -> line ("du\t" ^ l));
  List.iter (fun l -> line ("vo\t" ^ l)) (Version_order.dump t.versions);
  List.iter (fun l -> line ("me\t" ^ l)) (Me_verifier.dump t.me);
  List.iter (fun l -> line ("fw\t" ^ l)) (Fuw_verifier.dump t.fuw);
  List.iter (fun l -> line ("sc\t" ^ l)) (Sc_verifier.dump t.sc);
  List.iter
    (fun (d : Dep.t) ->
      line
        (Printf.sprintf "dl\t%s\t%d\t%d\t%s"
           (Dep.kind_to_string d.kind)
           d.from_txn d.to_txn
           (Dep.source_to_string d.source)))
    (Dep.Log.entries t.log);
  List.rev !buf

let split_tag line =
  match String.index_opt line '\t' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let parse_cell tb r c =
  Cell.make ~table:(int_of_string tb) ~row:(int_of_string r)
    ~col:(int_of_string c)

let decode ?(gc_every = 512) ?(narrow_candidates = true)
    ?(relaxed_reads = false) (profile : Il_profile.t) lines =
  try
    let header = ref None and scalars = ref None and forgotten = ref None in
    let mech = ref [] and bugs = ref [] in
    let txn_lines = ref [] and write_lines = ref [] and dep_lines = ref [] in
    let deferred_lines = ref [] and ir_lines = ref [] in
    let av_lines = ref [] and nv_lines = ref [] in
    let id_lines = ref [] and aw_lines = ref [] and du_lines = ref [] in
    let vo_lines = ref [] and me_lines = ref [] in
    let fw_lines = ref [] and sc_lines = ref [] and dl_lines = ref [] in
    List.iter
      (fun line ->
        let tag, rest = split_tag line in
        let push r = r := rest :: !r in
        match tag with
        | "h" -> header := Some rest
        | "s" -> scalars := Some rest
        | "fs" -> forgotten := Some rest
        | "mc" -> push mech
        | "b" -> push bugs
        | "x" -> push txn_lines
        | "xw" -> push write_lines
        | "xd" -> push dep_lines
        | "df" -> push deferred_lines
        | "ir" -> push ir_lines
        | "av" -> push av_lines
        | "nv" -> push nv_lines
        | "id" -> push id_lines
        | "aw" -> push aw_lines
        | "du" -> push du_lines
        | "vo" -> push vo_lines
        | "me" -> push me_lines
        | "fw" -> push fw_lines
        | "sc" -> push sc_lines
        | "dl" -> push dl_lines
        | tag -> failwith ("Checker.decode: unknown record tag " ^ tag))
      lines;
    let in_order r = List.rev !r in
    (match !header with
    | None -> failwith "Checker.decode: missing header record"
    | Some h -> (
      match String.split_on_char '\t' h with
      | [ name; ck_gc; ck_narrow; ck_relaxed ] ->
        if not (String.equal name profile.Il_profile.name) then
          failwith
            (Printf.sprintf
               "Checker.decode: checkpoint was written for profile %s, not %s"
               name profile.Il_profile.name);
        if
          int_of_string ck_gc <> gc_every
          || bool_of_string ck_narrow <> narrow_candidates
          || bool_of_string ck_relaxed <> relaxed_reads
        then
          failwith
            "Checker.decode: checkpoint was written under different checker \
             flags"
      | _ -> failwith "Checker.decode: malformed header record"));
    let txns = Hashtbl.create 4096 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ vid; status; fb; fa; tb; ta ] ->
          let vid = int_of_string vid in
          Hashtbl.replace txns vid
            {
              vid;
              first_iv = parse_opt_iv fb fa;
              terminal_iv = parse_opt_iv tb ta;
              vstatus = status_of_code status;
              writes = Cell.Tbl.create 8;
              write_cells = [];
              pending_deps = [];
            }
        | _ -> failwith "Checker.decode: malformed transaction record")
      (in_order txn_lines);
    let find_txn vid =
      match Hashtbl.find_opt txns (int_of_string vid) with
      | Some v -> v
      | None -> failwith "Checker.decode: record references unknown transaction"
    in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ vid; tb; r; c; value; ib; ia ] ->
          let v = find_txn vid in
          let cell = parse_cell tb r c in
          if not (Cell.Tbl.mem v.writes cell) then
            v.write_cells <- cell :: v.write_cells;
          Cell.Tbl.replace v.writes cell (int_of_string value, parse_iv ib ia)
        | _ -> failwith "Checker.decode: malformed write record")
      (in_order write_lines);
    let pending = Hashtbl.create 16 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ vid; kind; from_txn; to_txn; source ] ->
          let v = find_txn vid in
          let d =
            {
              Dep.kind = Dep.kind_of_string kind;
              from_txn = int_of_string from_txn;
              to_txn = int_of_string to_txn;
              source = Dep.source_of_string source;
            }
          in
          let r =
            match Hashtbl.find_opt pending v.vid with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.replace pending v.vid r;
              r
          in
          r := d :: !r
        | _ -> failwith "Checker.decode: malformed pending-dep record")
      (in_order dep_lines);
    (* lint: allow hashtbl-order — each binding updates its own txn *)
    Hashtbl.iter
      (fun vid deps ->
        match Hashtbl.find_opt txns vid with
        | Some v -> v.pending_deps <- List.rev !deps
        | None -> ())
      pending;
    let deferred =
      Leopard_util.Min_heap.create ~compare:(fun a b ->
          Int.compare (Interval.aft a.read_iv) (Interval.aft b.read_iv))
    in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ reader; rb; ra; sb; sa; items ] ->
          let items =
            if items = "" then []
            else
              List.map
                (fun part ->
                  match String.split_on_char ',' part with
                  | [ tb; r; c; value ] ->
                    (parse_cell tb r c, int_of_string value)
                  | _ -> failwith "Checker.decode: malformed read item")
                (String.split_on_char ';' items)
          in
          Leopard_util.Min_heap.push deferred
            {
              reader = int_of_string reader;
              read_iv = parse_iv rb ra;
              snapshot_iv = parse_iv sb sa;
              items;
            }
        | _ -> failwith "Checker.decode: malformed deferred-read record")
      (in_order deferred_lines);
    let cell_list_table lines parse_entry =
      let table = Cell.Tbl.create 64 in
      List.iter
        (fun rest ->
          match String.split_on_char '\t' rest with
          | [ tb; r; c; entries ] ->
            let entries =
              if entries = "" then []
              else List.map parse_entry (String.split_on_char ';' entries)
            in
            Cell.Tbl.replace table (parse_cell tb r c) (ref entries)
          | _ -> failwith "Checker.decode: malformed per-cell record")
        lines;
      table
    in
    (* reader lists are comma-separated ints, not ';' entries *)
    let initial_readers = Cell.Tbl.create 64 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ tb; r; c; readers ] ->
          let readers =
            if readers = "" then []
            else List.map int_of_string (String.split_on_char ',' readers)
          in
          Cell.Tbl.replace initial_readers (parse_cell tb r c) (ref readers)
        | _ -> failwith "Checker.decode: malformed initial-reader record")
      (in_order ir_lines);
    let aborted_values =
      cell_list_table (in_order av_lines) (fun part ->
          match String.split_on_char ',' part with
          | [ value; txn; aft ] ->
            (int_of_string value, int_of_string txn, int_of_string aft)
          | _ -> failwith "Checker.decode: malformed aborted-value entry")
    in
    let indeterminate_values =
      cell_list_table (in_order nv_lines) (fun part ->
          match String.split_on_char ',' part with
          | [ value; txn ] -> (int_of_string value, int_of_string txn)
          | _ -> failwith "Checker.decode: malformed indeterminate-value entry")
    in
    let sets = Hashtbl.create 8 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ name; ids ] ->
          let table = Hashtbl.create 8 in
          if ids <> "" then
            List.iter
              (fun id -> Hashtbl.replace table (int_of_string id) ())
              (String.split_on_char ',' ids);
          Hashtbl.replace sets name table
        | _ -> failwith "Checker.decode: malformed id-set record")
      (in_order id_lines);
    let id_set name =
      match Hashtbl.find_opt sets name with
      | Some table -> table
      | None -> Hashtbl.create 8
    in
    let awaiting = Hashtbl.create 8 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ reader; entries ] ->
          let entries =
            if entries = "" then []
            else
              List.map
                (fun part ->
                  match String.split_on_char ',' part with
                  | [ tb; r; c; value; writer; rb; ra; sb; sa ] ->
                    {
                      a_cell = parse_cell tb r c;
                      a_value = int_of_string value;
                      a_writer = int_of_string writer;
                      a_read_iv = parse_iv rb ra;
                      a_snapshot_iv = parse_iv sb sa;
                    }
                  | _ -> failwith "Checker.decode: malformed awaiting entry")
                (String.split_on_char ';' entries)
          in
          Hashtbl.replace awaiting (int_of_string reader) (ref entries)
        | _ -> failwith "Checker.decode: malformed awaiting record")
      (in_order aw_lines);
    let dedup_seen = Hashtbl.create 64 in
    List.iter
      (fun rest ->
        match Leopard_trace.Codec.of_line rest with
        | Ok (Some tr) ->
          Hashtbl.replace dedup_seen
            (tr.Trace.client, tr.Trace.txn, tr.Trace.ts_bef)
            tr
        | Ok None -> failwith "Checker.decode: dedup record is a marker line"
        | Error e -> failwith ("Checker.decode: " ^ e))
      (in_order du_lines);
    let log = Dep.Log.create () in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ kind; from_txn; to_txn; source ] ->
          ignore
            (Dep.Log.add log
               {
                 Dep.kind = Dep.kind_of_string kind;
                 from_txn = int_of_string from_txn;
                 to_txn = int_of_string to_txn;
                 source = Dep.source_of_string source;
               })
        | _ -> failwith "Checker.decode: malformed dep-log record")
      (in_order dl_lines);
    let mech_counts = Hashtbl.create 4 in
    List.iter
      (fun rest ->
        match String.split_on_char '\t' rest with
        | [ m; n ] ->
          Hashtbl.replace mech_counts (mechanism_of_string m) (int_of_string n)
        | _ -> failwith "Checker.decode: malformed mechanism-count record")
      (in_order mech);
    let bugs_list =
      List.map
        (fun rest ->
          match String.split_on_char '\t' rest with
          | [ m; anomaly; txns; cell; row; detail ] ->
            {
              Bug.mechanism = mechanism_of_string m;
              anomaly =
                (if anomaly = "-" then None else Some (anomaly_of_string anomaly));
              txns =
                (if txns = "" then []
                 else List.map int_of_string (String.split_on_char ',' txns));
              cell =
                (if cell = "-" then None
                 else
                   match String.split_on_char ',' cell with
                   | [ tb; r; c ] -> Some (parse_cell tb r c)
                   | _ -> failwith "Checker.decode: malformed bug cell");
              row =
                (if row = "-" then None
                 else
                   match String.split_on_char ',' row with
                   | [ tb; r ] -> Some (int_of_string tb, int_of_string r)
                   | _ -> failwith "Checker.decode: malformed bug row");
              detail = Scanf.unescaped detail;
            }
          | _ -> failwith "Checker.decode: malformed bug record")
        (in_order bugs)
    in
    let forgotten_by_source =
      match !forgotten with
      | None -> failwith "Checker.decode: missing truncation-tally record"
      | Some rest ->
        let fields = String.split_on_char '\t' rest in
        if List.length fields <> List.length Dep.all_sources then
          failwith "Checker.decode: malformed truncation-tally record";
        Array.of_list (List.map int_of_string fields)
    in
    match !scalars with
    | None -> failwith "Checker.decode: missing scalar record"
    | Some rest -> (
      match List.map int_of_string (String.split_on_char '\t' rest) with
      | [
       frontier; dedup_ts; traces; committed; aborted; bugs_total;
       reads_checked; peak_live; pruned_versions; pruned_locks; pruned_fuw;
       pruned_graph; dup_dropped; inconclusive_reads; ext_crashed_clients;
       ext_late_dropped; ext_lost; ext_restarts; ext_recovery_lost;
       ext_failovers; ext_lost_commits; finalized; truncations; truncated_deps;
      ] ->
        Ok
          {
            profile;
            gc_every;
            narrow_candidates;
            relaxed_reads;
            versions = Version_order.restore (in_order vo_lines);
            me = Me_verifier.restore (in_order me_lines);
            fuw = Fuw_verifier.restore (in_order fw_lines);
            sc =
              Sc_verifier.restore profile.Il_profile.check_sc
                (in_order sc_lines);
            log;
            txns;
            deferred;
            initial_readers;
            aborted_values;
            indeterminate_ids = id_set "indeterminate";
            indeterminate_values;
            ambiguous_ids = id_set "ambiguous";
            resolved_ids = id_set "resolved";
            lost_ids = id_set "lost";
            coord_ids = id_set "coord";
            awaiting;
            dedup_seen;
            dedup_ts;
            frontier;
            traces;
            committed;
            aborted;
            bugs_total;
            bugs = List.rev bugs_list;
            reads_checked;
            peak_live;
            pruned_versions;
            pruned_locks;
            pruned_fuw;
            pruned_graph;
            dup_dropped;
            inconclusive_reads;
            ext_crashed_clients;
            ext_late_dropped;
            ext_lost;
            ext_restarts;
            ext_recovery_lost;
            ext_failovers;
            ext_lost_commits;
            finalized = finalized <> 0;
            dep_hook = None;
            mech_counts;
            truncations;
            truncated_deps;
            forgotten_by_source;
          }
      | _ -> failwith "Checker.decode: malformed scalar record")
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
  | Scanf.Scan_failure msg -> Error msg
