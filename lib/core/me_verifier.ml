module Interval = Leopard_util.Interval

type mode = S | X

type entry = {
  etxn : int;
  mode : mode;
  acquire_iv : Interval.t;
  mutable release_iv : Interval.t option;
}

type verdict = Violation | Ww of int * int | Unordered

let conflicting a b =
  match (a, b) with S, S -> false | S, X | X, S | X, X -> true

let judge ~mine ~other =
  match (mine.release_iv, other.release_iv) with
  | Some r_mine, Some r_other ->
    (* "mine before other" is feasible iff my release can precede the
       other's acquisition. *)
    let mine_first = Interval.possibly_before r_mine other.acquire_iv in
    let other_first = Interval.possibly_before r_other mine.acquire_iv in
    (match (mine_first, other_first) with
    | false, false -> Violation
    | true, false -> Ww (mine.etxn, other.etxn)
    | false, true -> Ww (other.etxn, mine.etxn)
    | true, true -> Unordered)
  | None, _ | _, None ->
    invalid_arg "Me_verifier.judge: both entries must be released"

type t = {
  rows : (int * int, entry list ref) Hashtbl.t;
  by_txn : (int, (int * int) list) Hashtbl.t;
  mutable live : int;
}

let create () = { rows = Hashtbl.create 1024; by_txn = Hashtbl.create 256; live = 0 }

let row_entries t row =
  match Hashtbl.find_opt t.rows row with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.rows row r;
    r

(* A transaction keeps at most one entry per mode on a row.  Crucially, an
   S-to-X upgrade adds a *separate* X entry dated at the upgrading
   operation: the exclusive hold only starts at the upgrade, and dating it
   back to the S acquisition would falsely conflict with concurrent S
   readers the engine legitimately admitted. *)
let acquire t ~row ~txn mode ~iv =
  let entries = row_entries t row in
  let has m = List.exists (fun e -> e.etxn = txn && e.mode = m) !entries in
  let covered = match mode with X -> has X | S -> has S || has X in
  if not covered then begin
    entries :=
      { etxn = txn; mode; acquire_iv = iv; release_iv = None } :: !entries;
    t.live <- t.live + 1;
    let rows = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
    if not (List.mem row rows) then Hashtbl.replace t.by_txn txn (row :: rows)
  end

let release t ~txn ~iv ~on_pair =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some rows ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun row ->
        match Hashtbl.find_opt t.rows row with
        | None -> ()
        | Some entries ->
          let mine_entries =
            List.filter (fun e -> e.etxn = txn && e.release_iv = None) !entries
          in
          List.iter
            (fun mine ->
              mine.release_iv <- Some iv;
              List.iter
                (fun other ->
                  if
                    other.etxn <> txn
                    && conflicting mine.mode other.mode
                    && other.release_iv <> None
                  then on_pair ~row ~mine ~other (judge ~mine ~other))
                !entries)
            mine_entries)
      rows

let discard t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some rows ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun row ->
        match Hashtbl.find_opt t.rows row with
        | None -> ()
        | Some entries ->
          let keep, drop =
            List.partition (fun e -> e.etxn <> txn) !entries
          in
          t.live <- t.live - List.length drop;
          entries := keep)
      rows

let live_entries t = t.live

let prune t ~horizon =
  let dropped = ref 0 in
  (* lint: allow hashtbl-order — per-key in-place prune plus a
     commutative drop count *)
  Hashtbl.iter
    (fun _row entries ->
      let keep, drop =
        List.partition
          (fun e ->
            match e.release_iv with
            | Some r -> Interval.aft r > horizon
            | None -> true)
          !entries
      in
      dropped := !dropped + List.length drop;
      entries := keep)
    t.rows;
  t.live <- t.live - !dropped;
  !dropped
