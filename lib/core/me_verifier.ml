module Interval = Leopard_util.Interval

type mode = S | X

type entry = {
  etxn : int;
  mode : mode;
  acquire_iv : Interval.t;
  mutable release_iv : Interval.t option;
}

type verdict = Violation | Ww of int * int | Unordered

let conflicting a b =
  match (a, b) with S, S -> false | S, X | X, S | X, X -> true

let judge ~mine ~other =
  match (mine.release_iv, other.release_iv) with
  | Some r_mine, Some r_other ->
    (* "mine before other" is feasible iff my release can precede the
       other's acquisition. *)
    let mine_first = Interval.possibly_before r_mine other.acquire_iv in
    let other_first = Interval.possibly_before r_other mine.acquire_iv in
    (match (mine_first, other_first) with
    | false, false -> Violation
    | true, false -> Ww (mine.etxn, other.etxn)
    | false, true -> Ww (other.etxn, mine.etxn)
    | true, true -> Unordered)
  | None, _ | _, None ->
    invalid_arg "Me_verifier.judge: both entries must be released"

type t = {
  rows : (int * int, entry list ref) Hashtbl.t;
  by_txn : (int, (int * int) list) Hashtbl.t;
  mutable live : int;
}

let create () = { rows = Hashtbl.create 1024; by_txn = Hashtbl.create 256; live = 0 }

let row_entries t row =
  match Hashtbl.find_opt t.rows row with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.rows row r;
    r

(* A transaction keeps at most one entry per mode on a row.  Crucially, an
   S-to-X upgrade adds a *separate* X entry dated at the upgrading
   operation: the exclusive hold only starts at the upgrade, and dating it
   back to the S acquisition would falsely conflict with concurrent S
   readers the engine legitimately admitted. *)
let acquire t ~row ~txn mode ~iv =
  let entries = row_entries t row in
  let has m = List.exists (fun e -> e.etxn = txn && e.mode = m) !entries in
  let covered = match mode with X -> has X | S -> has S || has X in
  if not covered then begin
    entries :=
      { etxn = txn; mode; acquire_iv = iv; release_iv = None } :: !entries;
    t.live <- t.live + 1;
    let rows = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
    if not (List.mem row rows) then Hashtbl.replace t.by_txn txn (row :: rows)
  end

let release t ~txn ~iv ~on_pair =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some rows ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun row ->
        match Hashtbl.find_opt t.rows row with
        | None -> ()
        | Some entries ->
          let mine_entries =
            List.filter (fun e -> e.etxn = txn && e.release_iv = None) !entries
          in
          List.iter
            (fun mine ->
              mine.release_iv <- Some iv;
              List.iter
                (fun other ->
                  if
                    other.etxn <> txn
                    && conflicting mine.mode other.mode
                    && other.release_iv <> None
                  then on_pair ~row ~mine ~other (judge ~mine ~other))
                !entries)
            mine_entries)
      rows

let discard t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some rows ->
    Hashtbl.remove t.by_txn txn;
    List.iter
      (fun row ->
        match Hashtbl.find_opt t.rows row with
        | None -> ()
        | Some entries ->
          let keep, drop =
            List.partition (fun e -> e.etxn <> txn) !entries
          in
          t.live <- t.live - List.length drop;
          entries := keep)
      rows

let live_entries t = t.live

let referenced_txns t =
  let from_rows =
    Hashtbl.fold
      (fun _ entries acc ->
        List.fold_left (fun acc e -> e.etxn :: acc) acc !entries)
      t.rows []
    |> List.sort_uniq Int.compare
  in
  Hashtbl.fold (fun txn _ acc -> txn :: acc) t.by_txn from_rows
  |> List.sort_uniq Int.compare

(* Checkpoint codec.  Two kinds of line: [e] rows (one per lock entry,
   row-major sorted, entries in list order — [release] evaluates pairs in
   that order, so it pins bug-detection order) and [t] rows (one per
   transaction's by_txn binding, txn-sorted, row-list order preserved —
   [release] walks rows in that order). *)
let dump t =
  let entry_lines =
    Hashtbl.fold (fun row entries acc -> (row, !entries) :: acc) t.rows []
    |> List.sort (fun ((ta, ra), _) ((tb, rb), _) ->
           let c = Int.compare ta tb in
           if c <> 0 then c else Int.compare ra rb)
    |> List.concat_map (fun ((table, row), entries) ->
           List.map
             (fun e ->
               let rb, ra =
                 match e.release_iv with
                 | Some r ->
                   (string_of_int (Interval.bef r), string_of_int (Interval.aft r))
                 | None -> ("-", "-")
               in
               Printf.sprintf "e\t%d\t%d\t%d\t%s\t%d\t%d\t%s\t%s" table row
                 e.etxn
                 (match e.mode with S -> "S" | X -> "X")
                 (Interval.bef e.acquire_iv) (Interval.aft e.acquire_iv) rb ra)
             entries)
  in
  let txn_lines =
    Hashtbl.fold (fun txn rows acc -> (txn, rows) :: acc) t.by_txn []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (txn, rows) ->
           Printf.sprintf "t\t%d\t%s" txn
             (String.concat ";"
                (List.map (fun (tb, r) -> Printf.sprintf "%d,%d" tb r) rows)))
  in
  entry_lines @ txn_lines

let restore lines =
  let t = create () in
  let tails = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ "e"; table; row; etxn; mode; ab; aa; rb; ra ] ->
        let row = (int_of_string table, int_of_string row) in
        let release_iv =
          match (rb, ra) with
          | "-", "-" -> None
          | rb, ra ->
            Some (Interval.make ~bef:(int_of_string rb) ~aft:(int_of_string ra))
        in
        let e =
          {
            etxn = int_of_string etxn;
            mode =
              (match mode with
              | "S" -> S
              | "X" -> X
              | _ -> failwith "Me_verifier.restore: bad mode");
            acquire_iv =
              Interval.make ~bef:(int_of_string ab) ~aft:(int_of_string aa);
            release_iv;
          }
        in
        let r =
          match Hashtbl.find_opt tails row with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace tails row r;
            r
        in
        r := e :: !r;
        t.live <- t.live + 1
      | [ "t"; txn; rows ] ->
        let rows =
          if rows = "" then []
          else
            List.map
              (fun pair ->
                match String.split_on_char ',' pair with
                | [ tb; r ] -> (int_of_string tb, int_of_string r)
                | _ -> failwith "Me_verifier.restore: bad row pair")
              (String.split_on_char ';' rows)
        in
        Hashtbl.replace t.by_txn (int_of_string txn) rows
      | _ -> failwith "Me_verifier.restore: malformed line")
    lines;
  (* lint: allow hashtbl-order — each binding becomes its own row list;
     the rows table is only consulted per key *)
  Hashtbl.iter
    (fun row r -> Hashtbl.replace t.rows row (ref (List.rev !r)))
    tails;
  t

let prune t ~horizon =
  let dropped = ref 0 in
  (* lint: allow hashtbl-order — per-key in-place prune plus a
     commutative drop count *)
  Hashtbl.iter
    (fun _row entries ->
      let keep, drop =
        List.partition
          (fun e ->
            match e.release_iv with
            | Some r -> Interval.aft r > horizon
            | None -> true)
          !entries
      in
      dropped := !dropped + List.length drop;
      entries := keep)
    t.rows;
  t.live <- t.live - !dropped;
  !dropped
