let anomaly_census (r : Checker.report) =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (b : Bug.t) ->
      match b.anomaly with
      | Some a ->
        Hashtbl.replace tally a
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally a))
      | None -> ())
    r.bugs;
  List.sort
    (fun (_, a) (_, b) -> Int.compare b a)
    (Hashtbl.fold (fun a n acc -> (a, n) :: acc) tally [])

let degradation_line (d : Checker.degradation) =
  if Checker.degradation_free d then ""
  else
    Printf.sprintf
      "degradation: crashed clients %d | indeterminate txns %d | ambiguous \
       commits %d | dropped traces %d (late %d, dup %d, lost %d) | \
       inconclusive reads %d | unterminated txns %d | restarts %d (wal \
       records lost %d) | failovers %d (commits lost %d) | \
       coordinator-ambiguous %d\n"
      d.Checker.crashed_clients d.Checker.indeterminate_txns
      d.Checker.ambiguous_commits
      (d.Checker.late_traces_dropped + d.Checker.dup_traces_dropped
     + d.Checker.lost_traces)
      d.Checker.late_traces_dropped d.Checker.dup_traces_dropped
      d.Checker.lost_traces d.Checker.inconclusive_reads
      d.Checker.unterminated_txns d.Checker.restarts
      d.Checker.recovery_lost_records d.Checker.failovers
      d.Checker.lost_suffix_commits d.Checker.coord_ambiguous_commits

let verdict_line (r : Checker.report) =
  if r.bugs_total = 0 then
    match Checker.verdict r with
    | Checker.Inconclusive reason ->
      Printf.sprintf "INCONCLUSIVE — no violations proven, but %s" reason
    | Checker.Verified | Checker.Violation ->
      "PASS — no isolation violations"
  else
    let top =
      match anomaly_census r with
      | [] -> ""
      | census ->
        let head = List.filteri (fun i _ -> i < 3) census in
        Printf.sprintf " (top anomalies: %s)"
          (String.concat ", "
             (List.map
                (fun (a, n) -> Printf.sprintf "%s x%d" (Anomaly.to_string a) n)
                head))
    in
    Printf.sprintf "FAIL — %d violations%s" r.bugs_total top

let summary (r : Checker.report) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "traces %d | committed %d | aborted %d | reads checked %d\n"
       r.traces r.committed r.aborted r.reads_checked);
  Buffer.add_string buf
    (Printf.sprintf "dependencies deduced %d" r.deps_deduced);
  let by_source =
    List.sort String.compare
      (List.map
         (fun (s, n) -> Printf.sprintf "%s=%d" (Dep.source_to_string s) n)
         r.deduced_by_source)
  in
  if by_source <> [] then
    Buffer.add_string buf
      (Printf.sprintf " (%s)" (String.concat ", " by_source));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf
       "mirrored state: peak %d, final %d | pruned: versions %d, locks %d, \
        fuw %d, graph %d\n"
       r.peak_live r.final_live r.pruned_versions r.pruned_locks r.pruned_fuw
       r.pruned_graph);
  if r.bugs_by_mechanism <> [] then
    Buffer.add_string buf
      (Printf.sprintf "violations by mechanism: %s\n"
         (String.concat ", "
            (List.map
               (fun (m, n) ->
                 Printf.sprintf "%s=%d" (Bug.mechanism_to_string m) n)
               r.bugs_by_mechanism)));
  Buffer.add_string buf (degradation_line r.degradation);
  Buffer.contents buf

let bugs ?(limit = 5) (r : Checker.report) =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i b ->
      if i < limit then begin
        Buffer.add_string buf (Bug.to_string b);
        Buffer.add_char buf '\n'
      end)
    r.bugs;
  if r.bugs_total > limit then
    Buffer.add_string buf
      (Printf.sprintf "... and %d more\n" (r.bugs_total - limit));
  Buffer.contents buf

let print ?limit (r : Checker.report) =
  print_string (summary r);
  print_string (bugs ?limit r);
  print_endline (verdict_line r)
