(** Serialization-certifier verification (paper §V-D, Fig. 9, Theorem 5).

    A dependency graph over committed transactions, fed with the
    dependencies deduced by the other three mechanisms plus the rw edges
    derived from wr + version order.  Instead of searching the graph for
    cycles, the verifier mirrors the certifier the DBMS claims to run:

    - {b SSI} (PostgreSQL): two consecutive rw antidependencies among
      certainly-concurrent transactions should have been aborted — if the
      pattern appears between committed transactions, the certifier is
      broken;
    - {b MVTO} (CockroachDB): a dependency that certainly points from a
      younger transaction to an older one (by first-operation intervals)
      should have been refused;
    - {b Cycle} (OCC validation): any cycle of deduced (hence real)
      dependencies refutes conflict serializability.

    Certainty guards matter: all deduced edges are real, but a violation
    is only reported when the interval arithmetic proves the mirrored
    certifier must have seen the pattern — otherwise a correct engine
    could be flagged.

    Garbage collection implements Definition 4 / Theorem 5: a committed
    transaction with in-degree zero whose terminal after-timestamp lies at
    or before the earliest possible future snapshot can never join a
    cycle or a fresh pattern, and is pruned together with its edges. *)

module Interval = Leopard_util.Interval

type t

val create : Il_profile.certifier option -> t

val note_commit :
  t -> txn:int -> first_iv:Interval.t -> terminal_iv:Interval.t -> unit
(** Register a committed transaction as a graph node. *)

val add_dep : t -> Dep.t -> Bug.t list
(** Insert an edge (both endpoints must be registered) and run the
    mirrored certifier; returns the violations this edge exposes. *)

val nodes : t -> int
val edges : t -> int

val referenced_txns : t -> int list
(** Sorted ids of the live graph nodes — the SC contribution to the
    truncation retained-set (rw witnesses are excluded: they never emit
    new dependencies). *)

val gc : t -> frontier:int -> int
(** Prune garbage transactions (Definition 4) given that every unverified
    trace has [ts_bef >= frontier]; cascades while new in-degree-zero
    garbage appears.  Returns nodes pruned. *)

val dump : t -> string list
(** Serialize the graph, txn-sorted, preserving edge and rw-witness list
    order (they pin certifier-check order); witnesses carry their
    interval copies because they may outlive gc'd nodes.  Inverse of
    {!restore}. *)

val restore : Il_profile.certifier option -> string list -> t
(** Rebuild a graph from {!dump} output without re-running certifier
    checks; in-degrees and the edge count are recomputed.  Raises
    [Failure] on malformed input. *)

val has_cycle : t -> bool
(** Full cycle search over the current graph — used by tests to
    cross-validate the certifier mirrors, not by the online path. *)
