(** The two-level pipeline — online trace sorting (paper §IV-C,
    Algorithm 1, Theorem 1).

    Clients produce traces in increasing [ts_bef] order individually, but
    the verifier needs one globally sorted stream.  The pipeline buffers
    each client's stream in a local buffer and merges batches into a
    global min-heap, dispatching a trace only when the watermark — the
    smallest head [ts_bef] across local buffers — proves nothing smaller
    can still arrive (Theorem 1).

    Two §IV-C optimizations are toggleable for the Fig. 10 ablation:

    - {b prefer-smallest}: fetch only from the local buffers whose head
      timestamps are smallest instead of draining every buffer each
      round, so one slow client cannot inflate the heap;
    - {b balanced flow}: fetch at most as many traces into the heap as
      were dispatched out of it, keeping the heap size stable.

    Sources are pull-based: the pipeline fetches from
    [source client] when it refills that client's local buffer, which
    models clients pushing fixed-size batches.

    {b Multi-epoch traces.}  A stream spanning server crash–recovery
    epochs needs no special handling here: the engine's clock is
    monotone across restarts, so per-client streams stay monotone in
    [ts_bef] and the watermark argument is untouched.  Epoch boundaries
    are metadata for the checker ([Checker.note_restart]), not for the
    sorter.

    {b Robustness.}  Real collection paths are lossy: clients crash,
    delivery stalls, traces arrive late.  Three hardenings keep the
    pipeline live and sound under those conditions (see
    [docs/ROBUSTNESS.md]):

    - a source may declare {!Closed_crashed} — its client died; the
      stream ends like [Closed] but the pipeline counts it;
    - with [max_stall_ns] set, a live source that delivers nothing for
      that long forfeits its watermark bound, so one silent client
      cannot pin the watermark at its last timestamp (or at -infinity if
      it never spoke) and freeze dispatch forever;
    - any trace arriving behind the dispatch frontier — delayed
      delivery, or a stalled source reviving after its bound was
      forfeited — is dropped and counted ({!late_dropped}) instead of
      corrupting the sorted stream downstream. *)

module Trace = Leopard_trace.Trace

type pull = Item of Trace.t | Pending | Closed | Closed_crashed
(** What a client source answers when the pipeline refills a local
    buffer: a trace, "nothing right now, still running" (online mode),
    end of stream, or end of stream because the client is known to have
    crashed (liveness declaration — same watermark effect as [Closed],
    tracked separately for degradation reporting). *)

type t

val create :
  ?batch:int ->
  ?optimized:bool ->
  ?max_stall_ns:int ->
  ?now:(unit -> int) ->
  sources:(unit -> pull) array ->
  unit ->
  t
(** [batch] (default 64) is the local-buffer capacity; [optimized]
    (default true) enables both §IV-C optimizations.

    [max_stall_ns] (default: none — block forever, the paper's
    assumption of complete streams) bounds how long an empty live source
    may pin the watermark, measured against [now].  Setting
    [max_stall_ns] without supplying [now] raises [Invalid_argument]:
    the default clock is a constant, so the bound would silently never
    trip.  Pass the simulation or wall clock via [now] when enabling the
    bound. *)

val of_lists : ?batch:int -> ?optimized:bool -> Trace.t list array -> t
(** Offline convenience: one finished stream per client. *)

val next : t -> Trace.t option
(** Dispatch the next trace in global [ts_bef] order.  [None] means
    nothing is {e currently} dispatchable: all sources are closed and
    drained, or some live source is [Pending] and the watermark cannot
    advance (check {!closed}). *)

val drain : t -> f:(Trace.t -> unit) -> int
(** Dispatch everything currently dispatchable; returns the number of
    traces dispatched by this call.  In online mode call it again after
    clients make progress. *)

val closed : t -> bool
(** Every source has reported [Closed] and all buffers are empty. *)

val watermark : t -> int
(** The Theorem 1 progress proof: every trace not yet delivered by any
    source has [ts_bef >= watermark].  This is the truncation-safety
    signal for [Checker.truncate] — once the watermark passes a verified
    prefix, no live transaction can reach back into it.  [max_int] when
    every source is exhausted (or has forfeited its bound). *)

val dispatched : t -> int

val late_dropped : t -> int
(** Traces discarded because they arrived behind the dispatch frontier
    (delayed delivery / revived stalled sources).  Non-zero means the
    verification input was incomplete — report it as degradation. *)

val crashed_sources : t -> int
(** Sources that ended with {!Closed_crashed}. *)

val stalled_sources : t -> int
(** Live sources currently past the [max_stall_ns] bound. *)

val peak_memory : t -> int
(** High-water mark of buffered traces (global heap + local buffers) —
    the Fig. 10 memory metric. *)

val heap_size : t -> int
(** Current global-buffer occupancy. *)
