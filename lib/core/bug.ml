module Cell = Leopard_trace.Cell

type mechanism = Cr | Me | Fuw | Sc

let mechanism_to_string = function
  | Cr -> "CR"
  | Me -> "ME"
  | Fuw -> "FUW"
  | Sc -> "SC"

(* declaration order, so typed sorts keep the historical report order *)
let mechanism_rank = function Cr -> 0 | Me -> 1 | Fuw -> 2 | Sc -> 3
let compare_mechanism a b = Int.compare (mechanism_rank a) (mechanism_rank b)

type t = {
  mechanism : mechanism;
  anomaly : Anomaly.t option;
  txns : int list;
  cell : Cell.t option;
  row : (int * int) option;
  detail : string;
}

let make ~mechanism ~txns ?anomaly ?cell ?row detail =
  { mechanism; anomaly; txns; cell; row; detail }

let pp ppf t =
  Format.fprintf ppf "[%s]" (mechanism_to_string t.mechanism);
  (match t.anomaly with
  | Some a -> Format.fprintf ppf "[%s]" (Anomaly.to_string a)
  | None -> ());
  Format.fprintf ppf " txns={%s}"
    (String.concat "," (List.map string_of_int t.txns));
  (match t.cell with
  | Some c -> Format.fprintf ppf " cell=%a" Cell.pp c
  | None -> ());
  (match t.row with
  | Some (tb, r) -> Format.fprintf ppf " row=t%d.r%d" tb r
  | None -> ());
  Format.fprintf ppf ": %s" t.detail

let to_string t = Format.asprintf "%a" pp t
