module Interval = Leopard_util.Interval

(* rw endpoints carry their interval evidence so that garbage-collecting
   the node (Definition 4 is stated for cycles) can never lose an SSI
   dangerous-structure witness: an in-degree-zero reader may still serve
   as the x of a future x -> pivot -> y pattern. *)
type rw_end = { rtxn : int; rfirst : Interval.t; rterminal : Interval.t }

type node = {
  ntxn : int;
  first_iv : Interval.t;
  terminal_iv : Interval.t;
  mutable out_edges : (int * Dep.kind) list;
  mutable in_degree : int;
  mutable in_rw : rw_end list;  (** sources of incoming rw edges *)
  mutable out_rw : rw_end list;  (** targets of outgoing rw edges *)
}

type t = {
  certifier : Il_profile.certifier option;
  nodes : (int, node) Hashtbl.t;
  mutable edge_count : int;
}

let create certifier = { certifier; nodes = Hashtbl.create 4096; edge_count = 0 }

let note_commit t ~txn ~first_iv ~terminal_iv =
  if not (Hashtbl.mem t.nodes txn) then
    Hashtbl.replace t.nodes txn
      {
        ntxn = txn;
        first_iv;
        terminal_iv;
        out_edges = [];
        in_degree = 0;
        in_rw = [];
        out_rw = [];
      }

let nodes t = Hashtbl.length t.nodes
let edges t = t.edge_count

let referenced_txns t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes []
  |> List.sort_uniq Int.compare

(* An rw(a -> b) edge is SSI-relevant only when a and b were certainly
   concurrent: b certainly began before a committed.  (A non-concurrent
   antidependency is harmless and PostgreSQL's certifier ignores it.) *)
let ssi_concurrent ~reader ~writer =
  Interval.certainly_before writer.first_iv reader.terminal_iv

let ssi_concurrent_ends ~reader_terminal ~writer_first =
  Interval.certainly_before writer_first reader_terminal

let ssi_check a b =
  (* Edge rw(a -> b) just added and certainly concurrent.  A dangerous
     structure exists if some rw(x -> a) makes a a pivot, or some
     rw(b -> y) makes b a pivot. *)
  let bugs = ref [] in
  let report pivot x y =
    bugs :=
      Bug.make ~mechanism:Bug.Sc ~anomaly:Anomaly.Write_skew
        ~txns:[ x; pivot; y ]
        (Printf.sprintf
           "SSI certifier violated: committed pivot %d has consecutive rw \
            antidependencies %d->%d->%d among concurrent transactions"
           pivot x pivot y)
      :: !bugs
  in
  List.iter
    (fun x ->
      if
        ssi_concurrent_ends ~reader_terminal:x.rterminal ~writer_first:a.first_iv
      then report a.ntxn x.rtxn b.ntxn)
    a.in_rw;
  List.iter
    (fun y ->
      if
        ssi_concurrent_ends ~reader_terminal:b.terminal_iv
          ~writer_first:y.rfirst
      then report b.ntxn a.ntxn y.rtxn)
    b.out_rw;
  !bugs

let mvto_check a b =
  (* Dependency a -> b: the certifier forbids a dependency from a younger
     transaction to an older one.  Certain violation iff b certainly began
     before a did. *)
  if Interval.certainly_before b.first_iv a.first_iv then
    [
      Bug.make ~mechanism:Bug.Sc
        ~anomaly:Anomaly.Serialization_order_inversion ~txns:[ a.ntxn; b.ntxn ]
        (Printf.sprintf
           "MVTO certifier violated: dependency %d->%d goes from a \
            certainly-younger to a certainly-older transaction"
           a.ntxn b.ntxn);
    ]
  else []

let reaches t ~src ~dst =
  let visited = Hashtbl.create 64 in
  let rec dfs id =
    if id = dst then true
    else if Hashtbl.mem visited id then false
    else begin
      Hashtbl.replace visited id ();
      match Hashtbl.find_opt t.nodes id with
      | None -> false
      | Some n -> List.exists (fun (next, _) -> dfs next) n.out_edges
    end
  in
  dfs src

let cycle_check t a b =
  (* Edge a -> b: a cycle exists iff b already reaches a. *)
  if reaches t ~src:b.ntxn ~dst:a.ntxn then
    [
      Bug.make ~mechanism:Bug.Sc ~anomaly:Anomaly.Dependency_cycle
        ~txns:[ a.ntxn; b.ntxn ]
        (Printf.sprintf
           "conflict serializability violated: dependency %d->%d closes a \
            cycle of deduced dependencies"
           a.ntxn b.ntxn);
    ]
  else []

let add_dep t (d : Dep.t) =
  match
    (Hashtbl.find_opt t.nodes d.from_txn, Hashtbl.find_opt t.nodes d.to_txn)
  with
  | Some a, Some b when a.ntxn <> b.ntxn ->
    let fresh = not (List.mem (b.ntxn, d.kind) a.out_edges) in
    if not fresh then []
    else begin
      a.out_edges <- (b.ntxn, d.kind) :: a.out_edges;
      b.in_degree <- b.in_degree + 1;
      t.edge_count <- t.edge_count + 1;
      if d.kind = Dep.Rw then begin
        a.out_rw <-
          { rtxn = b.ntxn; rfirst = b.first_iv; rterminal = b.terminal_iv }
          :: a.out_rw;
        b.in_rw <-
          { rtxn = a.ntxn; rfirst = a.first_iv; rterminal = a.terminal_iv }
          :: b.in_rw
      end;
      match t.certifier with
      | None -> []
      | Some Il_profile.Ssi_pattern ->
        if d.kind = Dep.Rw && ssi_concurrent ~reader:a ~writer:b then
          ssi_check a b
        else []
      | Some Il_profile.Mvto_order -> mvto_check a b
      | Some Il_profile.Cycle_detect -> cycle_check t a b
    end
  | _ -> []

let gc t ~frontier =
  let pruned = ref 0 in
  let garbage n = n.in_degree = 0 && Interval.aft n.terminal_iv <= frontier in
  let queue = Queue.create () in
  (* lint: allow hashtbl-order — seeds a deletion fixpoint: every garbage
     node is removed (and counted once) whatever the seeding order *)
  Hashtbl.iter (fun _ n -> if garbage n then Queue.push n queue) t.nodes;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    if Hashtbl.mem t.nodes n.ntxn then begin
      Hashtbl.remove t.nodes n.ntxn;
      incr pruned;
      List.iter
        (fun (target, _) ->
          match Hashtbl.find_opt t.nodes target with
          | Some m ->
            m.in_degree <- m.in_degree - 1;
            if garbage m then Queue.push m queue
          | None -> ())
        n.out_edges;
      t.edge_count <- t.edge_count - List.length n.out_edges
    end
  done;
  !pruned

(* Checkpoint codec: one line per node, txn-sorted.  [out_edges],
   [in_rw] and [out_rw] keep their list order (the certifier checks
   iterate them, pinning bug order); rw witnesses are dumped with their
   interval copies because they may reference nodes the gc already
   removed.  [in_degree] and [edge_count] are recomputed on restore —
   every live out-edge targets a live node (gc only removes in-degree
   zero nodes, removing their out-edges with them). *)
let dump t =
  let rw_ends ends =
    String.concat ";"
      (List.map
         (fun r ->
           Printf.sprintf "%d,%d,%d,%d,%d" r.rtxn (Interval.bef r.rfirst)
             (Interval.aft r.rfirst) (Interval.bef r.rterminal)
             (Interval.aft r.rterminal))
         ends)
  in
  Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
  |> List.sort (fun a b -> Int.compare a.ntxn b.ntxn)
  |> List.map (fun n ->
         Printf.sprintf "%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s" n.ntxn
           (Interval.bef n.first_iv) (Interval.aft n.first_iv)
           (Interval.bef n.terminal_iv) (Interval.aft n.terminal_iv)
           (String.concat ";"
              (List.map
                 (fun (target, kind) ->
                   Printf.sprintf "%d,%s" target (Dep.kind_to_string kind))
                 n.out_edges))
           (rw_ends n.in_rw) (rw_ends n.out_rw))

let restore certifier lines =
  let t = create certifier in
  let parse_rw_ends s =
    if s = "" then []
    else
      List.map
        (fun part ->
          match String.split_on_char ',' part with
          | [ rtxn; fb; fa; tb; ta ] ->
            {
              rtxn = int_of_string rtxn;
              rfirst =
                Interval.make ~bef:(int_of_string fb) ~aft:(int_of_string fa);
              rterminal =
                Interval.make ~bef:(int_of_string tb) ~aft:(int_of_string ta);
            }
          | _ -> failwith "Sc_verifier.restore: bad rw witness")
        (String.split_on_char ';' s)
  in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ ntxn; fb; fa; tb; ta; out_edges; in_rw; out_rw ] ->
        let out_edges =
          if out_edges = "" then []
          else
            List.map
              (fun part ->
                match String.split_on_char ',' part with
                | [ target; kind ] ->
                  (int_of_string target, Dep.kind_of_string kind)
                | _ -> failwith "Sc_verifier.restore: bad edge")
              (String.split_on_char ';' out_edges)
        in
        let ntxn = int_of_string ntxn in
        Hashtbl.replace t.nodes ntxn
          {
            ntxn;
            first_iv =
              Interval.make ~bef:(int_of_string fb) ~aft:(int_of_string fa);
            terminal_iv =
              Interval.make ~bef:(int_of_string tb) ~aft:(int_of_string ta);
            out_edges;
            in_degree = 0;
            in_rw = parse_rw_ends in_rw;
            out_rw = parse_rw_ends out_rw;
          }
      | _ -> failwith "Sc_verifier.restore: malformed node line")
    lines;
  (* lint: allow hashtbl-order — in-degree increments are commutative *)
  Hashtbl.iter
    (fun _ n ->
      t.edge_count <- t.edge_count + List.length n.out_edges;
      List.iter
        (fun (target, _) ->
          match Hashtbl.find_opt t.nodes target with
          | Some m -> m.in_degree <- m.in_degree + 1
          | None -> failwith "Sc_verifier.restore: edge to unknown node")
        n.out_edges)
    t.nodes;
  t

let has_cycle t =
  let color = Hashtbl.create 64 in
  let rec dfs id =
    match Hashtbl.find_opt color id with
    | Some `Grey -> true
    | Some `Black -> false
    | None -> (
      Hashtbl.replace color id `Grey;
      match Hashtbl.find_opt t.nodes id with
      | None ->
        Hashtbl.replace color id `Black;
        false
      | Some n ->
        let cyc = List.exists (fun (next, _) -> dfs next) n.out_edges in
        Hashtbl.replace color id `Black;
        cyc)
  in
  (* lint: allow hashtbl-order — boolean existence check: a cycle is
     reachable from some node in it, whatever the start order *)
  Hashtbl.fold (fun id _ acc -> acc || dfs id) t.nodes false
