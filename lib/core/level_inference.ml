type verdict = {
  profile : Il_profile.t;
  passed : bool;
  violations : int;
  violating_mechanisms : string list;
}

let profiles_of_dbms dbms =
  let prefix = dbms ^ "/" in
  List.filter
    (fun (p : Il_profile.t) ->
      String.length p.name > String.length prefix
      && String.sub p.name 0 (String.length prefix) = prefix)
    Il_profile.all

let strength (p : Il_profile.t) =
  (* conventional strength order by level suffix *)
  match String.index_opt p.name '/' with
  | None -> 0
  | Some i -> (
    match String.sub p.name (i + 1) (String.length p.name - i - 1) with
    | "RC" -> 1
    | "RR" -> 2
    | "SI" -> 3
    | "SR" -> 4
    | _ -> 0)

let infer ~dbms traces =
  List.map
    (fun profile ->
      let checker = Checker.create ~relaxed_reads:true profile in
      List.iter (Checker.feed checker) traces;
      Checker.finalize checker;
      let report = Checker.report checker in
      let violating_mechanisms =
        List.sort_uniq String.compare
          (List.map
             (fun (b : Bug.t) -> Bug.mechanism_to_string b.mechanism)
             report.Checker.bugs)
      in
      {
        profile;
        passed = report.Checker.bugs_total = 0;
        violations = report.Checker.bugs_total;
        violating_mechanisms;
      })
    (List.sort
       (fun a b -> Int.compare (strength a) (strength b))
       (profiles_of_dbms dbms))

let strongest_passed verdicts =
  List.fold_left
    (fun best v ->
      if not v.passed then best
      else
        match best with
        | Some b when strength b >= strength v.profile -> best
        | _ -> Some v.profile)
    None verdicts

let pp_verdicts ppf verdicts =
  List.iter
    (fun v ->
      Format.fprintf ppf "%-18s %s" v.profile.Il_profile.name
        (if v.passed then "PASS"
         else
           Printf.sprintf "FAIL (%d violations: %s)" v.violations
             (String.concat "," v.violating_mechanisms));
      Format.pp_print_newline ppf ())
    verdicts
