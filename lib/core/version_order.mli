(** Ordered versions per cell — the verifier's mirror of MVCC storage.

    The CR verification (§V-A) keeps, for every recently accessed cell,
    the committed versions ordered by the after-timestamp of their
    installation interval.  Following the paper's transaction model ("a
    commit installs all versions created by a transaction"), the
    {e installation interval} used for visibility reasoning is the
    committing transaction's commit-trace interval; the write operation's
    own interval is retained as [write_iv] for diagnostics and for the
    FUW verification.

    Versions also carry the readers that were matched to them, which is
    how rw dependencies are derived when a direct successor version
    appears (Fig. 9). *)

module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Interval = Leopard_util.Interval

type version = {
  value : Trace.value;
  vtxn : int;  (** committing transaction *)
  write_iv : Interval.t;  (** interval of the write operation *)
  commit_iv : Interval.t;  (** interval of the commit — visibility point *)
  mutable readers : int list;  (** readers matched to this version *)
}

type t

val create : unit -> t

val install :
  t ->
  Cell.t ->
  version ->
  predecessor:(version option -> unit) ->
  successor:(version option -> unit) ->
  unit
(** Insert a committed version into the cell's chain, keeping ascending
    [commit_iv] after-timestamp order.  The callbacks receive the direct
    neighbours at the insertion point (used to emit version-order ww and
    derived rw dependencies). *)

val chain : t -> Cell.t -> version list
(** Ascending (oldest to newest); [] for unknown cells. *)

val find_by_value : t -> Cell.t -> Trace.value -> version list
(** Committed versions of the cell carrying the given value. *)

val live_versions : t -> int
(** Total versions currently retained — the CR memory metric. *)

val cells : t -> int

val referenced_txns : t -> int list
(** Sorted ids of every transaction a retained version references (its
    writer and its matched readers) — the cell-mirror contribution to
    the truncation retained-set. *)

val dump : t -> string list
(** Serialize every retained version, cell-major in {!Cell.compare} order
    (deterministic whatever the insertion history); in-chain order and
    reader-list order are preserved exactly.  Inverse of {!restore}. *)

val restore : string list -> t
(** Rebuild a mirror from {!dump} output.  Raises [Failure] on a
    malformed line. *)

val prune : t -> horizon:int -> int
(** Garbage-collect versions that can never again be candidates for any
    snapshot taken at or after [horizon]: a version is dropped when it is
    certainly installed before {e every} version that could still serve
    as such a snapshot's pivot (the horizon-pivot and everything newer).
    Pivot-overlap versions are kept, per Fig. 6.  Returns the number of
    versions dropped. *)
