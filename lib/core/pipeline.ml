module Trace = Leopard_trace.Trace

type pull = Item of Trace.t | Pending | Closed | Closed_crashed

type local = {
  queue : Trace.t Queue.t;
  source : unit -> pull;
  mutable exhausted : bool;
  mutable crashed : bool;
  mutable last_bef : int;
      (* largest ts_bef pulled so far: since each client's stream is
         monotone, it lower-bounds everything the client will still send,
         which keeps the watermark sound while the client is Pending *)
  mutable last_progress : int;
      (* now() at creation / last Item — drives the stall bound *)
}

type t = {
  locals : local array;
  batch : int;
  optimized : bool;
  max_stall_ns : int option;
  now : unit -> int;
  heap : Trace.t Leopard_util.Min_heap.t;
  mutable frontier : int;  (* largest ts_bef dispatched *)
  mutable dispatched : int;
  mutable late_dropped : int;
  mutable crashed_sources : int;
  mutable peak : int;
}

let create ?(batch = 64) ?(optimized = true) ?max_stall_ns ?now ~sources () =
  (* A stall bound without a clock is a silent no-op (the default clock
     is a constant, so [now () - last_progress] never reaches the
     bound); that footgun shipped once, so now it fails fast. *)
  (match (max_stall_ns, now) with
  | Some _, None ->
    invalid_arg
      "Pipeline.create: max_stall_ns requires a real clock (pass ~now)"
  | _ -> ());
  let now = Option.value ~default:(fun () -> 0) now in
  let t0 = now () in
  {
    locals =
      Array.map
        (fun source ->
          {
            queue = Queue.create ();
            source;
            exhausted = false;
            crashed = false;
            last_bef = min_int;
            last_progress = t0;
          })
        sources;
    batch = max 1 batch;
    optimized;
    max_stall_ns;
    now;
    heap = Leopard_util.Min_heap.create ~compare:Trace.compare_by_bef;
    frontier = min_int;
    dispatched = 0;
    late_dropped = 0;
    crashed_sources = 0;
    peak = 0;
  }

let of_lists ?batch ?optimized lists =
  let sources =
    Array.map
      (fun traces ->
        let rest = ref traces in
        fun () ->
          match !rest with
          | [] -> Closed
          | t :: tl ->
            rest := tl;
            Item t)
      lists
  in
  create ?batch ?optimized ~sources ()

let buffered t =
  Leopard_util.Min_heap.length t.heap
  + Array.fold_left (fun acc l -> acc + Queue.length l.queue) 0 t.locals

let note_memory t =
  let m = buffered t in
  if m > t.peak then t.peak <- m

(* A live, empty source that has made no progress for max_stall_ns: its
   bound no longer pins the watermark, so a dead client cannot freeze
   dispatch forever.  Anything it delivers behind the frontier after the
   bound released is dropped as late (and counted). *)
let stalled t l =
  match t.max_stall_ns with
  | None -> false
  | Some bound ->
    (not l.exhausted)
    && Queue.is_empty l.queue
    && t.now () - l.last_progress >= bound

(* Pull up to [batch] traces from a client into its (empty) local buffer. *)
let refill t l =
  if (not l.exhausted) && Queue.is_empty l.queue then begin
    let rec pull n =
      if n > 0 then
        match l.source () with
        | Item trace ->
          l.last_progress <- t.now ();
          if trace.Trace.ts_bef < t.frontier then begin
            (* behind what was already dispatched (delayed delivery, or a
               revived source whose stall bound elapsed): unsound to feed
               downstream, so drop and account for it *)
            t.late_dropped <- t.late_dropped + 1;
            pull (n - 1)
          end
          else begin
            if trace.Trace.ts_bef > l.last_bef then
              l.last_bef <- trace.Trace.ts_bef;
            Queue.push trace l.queue;
            pull (n - 1)
          end
        | Closed -> l.exhausted <- true
        | Closed_crashed ->
          l.exhausted <- true;
          if not l.crashed then begin
            l.crashed <- true;
            t.crashed_sources <- t.crashed_sources + 1
          end
        | Pending -> ()
    in
    pull t.batch
  end

let refill_all t = Array.iter (refill t) t.locals

(* The watermark (Theorem 1): nothing with a smaller ts_bef can still
   arrive.  For a non-empty local that bound is its head; for an empty
   live local it is the last timestamp it delivered (its stream is
   monotone); an empty local that never delivered pins the watermark at
   -infinity, so nothing dispatches until every client has spoken — unless
   the stall bound has elapsed, in which case the silent client forfeits
   its bound (late arrivals are dropped instead). *)
let watermark t =
  Array.fold_left
    (fun acc l ->
      match Queue.peek_opt l.queue with
      | Some trace -> min acc trace.Trace.ts_bef
      | None ->
        if l.exhausted || stalled t l then acc else min acc l.last_bef)
    max_int t.locals

let drain_local_into_heap t l =
  Queue.iter (fun trace -> Leopard_util.Min_heap.push t.heap trace) l.queue;
  Queue.clear l.queue

let min_head t =
  Array.fold_left
    (fun acc l ->
      match Queue.peek_opt l.queue with
      | Some trace -> min acc trace.Trace.ts_bef
      | None -> acc)
    max_int t.locals

(* One fetch round (stages b-d of Algorithm 1).  Unoptimized: the global
   buffer fetches from every local buffer.  Optimized: only from the
   local buffer(s) holding the smallest head timestamp, so a slow client
   cannot force unrelated traces to pile up in the heap. *)
let fetch_round t =
  note_memory t;
  if t.optimized then begin
    let h = min_head t in
    Array.iter
      (fun l ->
        match Queue.peek_opt l.queue with
        | Some trace when trace.Trace.ts_bef = h -> drain_local_into_heap t l
        | Some _ | None -> ())
      t.locals
  end
  else Array.iter (drain_local_into_heap t) t.locals;
  refill_all t;
  note_memory t

let sources_done t =
  Array.for_all (fun l -> l.exhausted && Queue.is_empty l.queue) t.locals

let closed t = sources_done t && Leopard_util.Min_heap.is_empty t.heap

let rec next t =
  refill_all t;
  let w = watermark t in
  match Leopard_util.Min_heap.peek t.heap with
  | Some trace when trace.Trace.ts_bef < w || sources_done t ->
    ignore (Leopard_util.Min_heap.pop t.heap);
    if trace.Trace.ts_bef < t.frontier then begin
      (* Delayed delivery can leave a client's queue unsorted, so a trace
         older than what was already dispatched may only surface here at
         the heap, past the refill-time check.  Feeding it downstream
         would violate dispatch order; drop it as late instead. *)
      t.late_dropped <- t.late_dropped + 1;
      next t
    end
    else begin
      if trace.Trace.ts_bef > t.frontier then t.frontier <- trace.Trace.ts_bef;
      t.dispatched <- t.dispatched + 1;
      Some trace
    end
  | (Some _ | None)
    when Array.exists (fun l -> not (Queue.is_empty l.queue)) t.locals ->
    fetch_round t;
    next t
  | Some _ | None ->
    (* nothing buffered locally: either every source is done and the heap
       is drained, or a live source is Pending and the watermark cannot
       prove anything more dispatchable right now *)
    None

let drain t ~f =
  let rec go n =
    match next t with
    | Some trace ->
      f trace;
      go (n + 1)
    | None -> n
  in
  go 0

let dispatched t = t.dispatched
let late_dropped t = t.late_dropped
let crashed_sources t = t.crashed_sources

let stalled_sources t =
  Array.fold_left (fun acc l -> if stalled t l then acc + 1 else acc) 0 t.locals

let peak_memory t = t.peak
let heap_size t = Leopard_util.Min_heap.length t.heap
