(** Deduced transaction dependencies and the deduction log.

    The four verification mechanisms cooperate by exchanging the
    dependencies each of them can prove (paper §V-A): the consistent-read
    check deduces wr edges, mutual exclusion and first-updater-wins deduce
    ww edges, and rw edges follow from a wr edge plus the version order
    (Fig. 9).  The log records every deduction with its source so the
    serialization-certifier check can consume them and the evaluation can
    report which uncertain dependencies were recovered (Fig. 13). *)

type kind = Ww | Wr | Rw

val kind_to_string : kind -> string

val kind_of_string : string -> kind
(** Inverse of {!kind_to_string}; raises [Failure] on unknown input. *)

type source =
  | Direct  (** non-overlapping intervals: Fig. 3(a) *)
  | From_cr  (** unique candidate match (§V-A) *)
  | From_me  (** unique feasible lock order (Theorem 3) *)
  | From_fuw  (** unique feasible commit order (Theorem 4) *)
  | From_version_order  (** adjacent versions with certain commit order *)
  | Derived_rw  (** wr + version order (Fig. 9) *)

val source_to_string : source -> string

val source_of_string : string -> source
(** Inverse of {!source_to_string}; raises [Failure] on unknown input. *)

val all_sources : source list
(** Every source, in declaration (report) order. *)

val source_rank : source -> int
(** Position in {!all_sources} — indexes the checker's per-source
    truncation tallies. *)

type t = { kind : kind; from_txn : int; to_txn : int; source : source }

module Log : sig
  type dep = t
  type t

  val create : unit -> t

  val add : t -> dep -> bool
  (** Record a deduction; [false] if the (kind, from, to) triple was
      already known. *)

  val mem : t -> kind -> int -> int -> bool
  val count : t -> int
  val by_source : t -> (source * int) list
  val iter : t -> (dep -> unit) -> unit

  val forget_txn : t -> int -> unit
  (** Drop log entries touching a garbage-collected transaction. *)

  val txns : t -> int list
  (** Sorted list of transaction ids with at least one logged edge. *)

  val take_txn : t -> int -> dep list
  (** [forget_txn] that also returns the removed deductions, so a
      truncating checker can fold them into accumulated tallies before
      the memory is reclaimed. *)

  val entries : t -> dep list
  (** All logged deductions in a canonical (kind, from, to, source)
      order — deterministic regardless of insertion history, for
      checkpoint serialization. *)
end
