(** The Verifier — mechanism-mirrored verification (paper §V, Algorithm 2).

    [feed] consumes traces in non-decreasing [ts_bef] order (as the
    two-level pipeline dispatches them) and mirrors the engine's internal
    state: ordered versions per cell, an interval lock table, a
    first-updater-wins registry and a dependency graph.  The four
    verifications run cooperatively and exchange the dependencies each can
    prove:

    - {b CR} checks every read against the minimal candidate version set
      (Theorem 2) and deduces wr edges from unique matches;
    - {b ME} checks conflicting lock pairs at release time (Theorem 3) and
      deduces ww edges;
    - {b FUW} checks committed co-updaters of a row (Theorem 4) and
      deduces ww edges;
    - {b SC} mirrors the engine's certifier over all deduced edges, plus
      rw edges derived from wr + version order (Fig. 9).

    Reads are verified once the dispatch frontier passes their
    after-timestamp, which guarantees every version possibly visible to
    them has been installed in the mirror — this is what makes the online
    check sound despite out-of-order commit/read [ts_bef] interleavings.

    Obsolete state is pruned periodically: versions behind the pivot of
    every possible future snapshot, released locks behind the horizon,
    FUW entries behind the horizon and garbage transactions of the
    dependency graph (Definition 4, Theorem 5). *)

module Trace = Leopard_trace.Trace

type t

val create :
  ?gc_every:int ->
  ?narrow_candidates:bool ->
  ?relaxed_reads:bool ->
  Il_profile.t ->
  t
(** [gc_every] (default 512 traces, 0 disables) controls pruning
    frequency.

    [narrow_candidates] (default true) enables the paper's §V-A
    cooperation optimization: ww dependencies deduced by the ME and FUW
    mechanisms order versions whose installation intervals overlap, so a
    version provably overwritten before the snapshot is dropped from the
    candidate set even when intervals alone could not exclude it.  A
    smaller candidate set means stricter CR checks (more violations
    caught); on a correct engine the deduced order is real, so no false
    positives are introduced.

    [relaxed_reads] (default false) switches statement-level CR from the
    exact mechanism mirror ("the snapshot is taken at this statement") to
    claim compatibility ("the snapshot was taken somewhere between
    transaction begin and this statement").  Use it when asking whether a
    history {e supports} a weaker claim — e.g. level inference verifying
    a serializable history against a read-committed profile, where the
    stronger engine's transaction-level snapshots are legal. *)

val feed : t -> Trace.t -> unit
(** Traces must arrive in non-decreasing [ts_bef] order; raises
    [Invalid_argument] otherwise.  A structurally identical duplicate of
    a trace already fed at the same [(client, txn, ts_bef)] (a double
    delivery) is silently dropped and counted in
    {!degradation.dup_traces_dropped}. *)

val feed_all : t -> Trace.t list -> unit

val finalize : t -> unit
(** Flush deferred read checks and run a last pruning pass.  Must be
    called once after the final trace. *)

val truncate : t -> watermark:int -> unit
(** Fold the verified prefix into the compact summary.  [watermark] is
    the pipeline's progress proof ({!Pipeline.watermark}): every trace
    not yet dispatched has [ts_bef >= watermark].  The checker prunes
    all four mechanism mirrors at [min watermark (internal horizon)]
    exactly as periodic gc does, then additionally folds deduction-log
    entries whose transactions no longer appear in {e any} live
    structure into accumulated per-source tallies — the one structure
    periodic gc never bounds.  Folded counts are merged back into
    {!report.deps_deduced} / {!report.deduced_by_source}, so a
    truncated run reports the same totals as an untruncated one; open
    ambiguous/lost/indeterminate sets, degradation counters and stored
    bugs are always retained.  After a truncation, {!live_size} is
    O(window): bounded by the state reachable from live transactions.
    Safe to call at any dispatch point, any number of times. *)

val mark_indeterminate : t -> txn:int -> unit
(** Declare that [txn]'s commit outcome is unknowable from the trace
    stream (its client crashed with the transaction in flight — the
    commit may or may not have taken effect server-side).  The
    transaction is excluded from ME/FUW/SC obligations, dependencies
    touching it are dropped, and reads observing one of its written
    values count as inconclusive instead of reporting a violation.  May
    be called before or after the transaction's traces are fed; call it
    no later than the batch in which the crash was detected so downstream
    reads are already covered when they are checked. *)

val mark_ambiguous_commit : t -> txn:int -> unit
(** Declare that [txn]'s client sent a COMMIT but never received the
    acknowledgement (wire faults: the request or its reply was lost, or
    the connection reset after delivery).  The transaction starts with
    the same exclusions as {!mark_indeterminate}, but is {e resolvable}:
    when a later {e committed} read observes one of its written values,
    the checker promotes it to definitely-committed ("outcome
    resolution" — an engine at read-committed or above never serves an
    unapplied write to a transaction that goes on to commit) and the
    read is re-checked against the promoted version.  Promoted
    transactions count in {!report.resolved_ambiguous} and stop
    degrading the verdict; unresolved ones count in
    {!degradation.ambiguous_commits}.  ME and FUW obligations stay
    waived even after promotion (their instants are unknowable).  Call
    it no later than the batch in which the give-up was detected, like
    {!mark_indeterminate}. *)

val mark_coord_ambiguous : t -> txn:int -> unit
(** Declare that [txn]'s 2PC coordinator crashed before reaching a
    commit decision (a trace-file [P … ?] marker, or [Run]'s
    coordinator-ambiguity channel): the client can never learn the
    outcome.  Identical exclusions and resolution rule to
    {!mark_ambiguous_commit}, but counted in a separate channel —
    {!degradation.coord_ambiguous_commits} — so coordinator give-ups
    and wire give-ups partition exactly: whichever mark arrives first
    claims the transaction, and a later mark from the other channel is
    a no-op.  A failover's {!note_failover} lost-suffix still wins over
    both ("lost beats ambiguous"). *)

val note_crashed_clients : t -> int -> unit
(** Add externally detected client crashes to the degradation stats. *)

val note_late_dropped : t -> int -> unit
(** Add traces the pipeline dropped as late ({!Pipeline.late_dropped}). *)

val note_lost_traces : t -> int -> unit
(** Add traces known lost before dispatch (collection drops, corrupt
    trace-file lines skipped by [Codec.load_lenient], ...). *)

val note_restart : t -> at:int -> replayed:int -> damaged:int -> unit
(** Declare one server crash–recovery epoch boundary (a trace-file
    [E] marker, or [Run]'s [epochs]): the server crashed at instant
    [at] and recovered by replaying [replayed] WAL records, [damaged]
    of which were torn, lost, reordered or duplicated.  A clean restart
    ([damaged = 0]) does not degrade the verdict — the trace stream is
    complete and every post-crash timestamp is fresher than the crash,
    so the obligations remain fully checkable.  Damaged records are
    counted in {!degradation.recovery_lost_records} and weaken
    [Verified] to [Inconclusive].  Unlike {!note_lost_traces}, recovery
    damage never downgrades unmatched reads: the traces are all
    present, so a read contradicting them is still a provable
    violation.  Raises [Invalid_argument] on negative inputs. *)

val note_failover : t -> at:int -> epoch:int -> lost:int list -> unit
(** Declare one leader change (a trace-file [L] marker, or [Run]'s
    leader marks): at instant [at] a follower was promoted into epoch
    [epoch], truncating the replication log to the survivor prefix and
    losing the commits in [lost].  Call it {e before} feeding traces —
    lost transactions then enter the checker already indeterminate, and
    (unlike {!mark_ambiguous_commit}) they are {e never} resolvable: the
    surviving timeline provably lacks them, so a read observing their
    values is inconclusive rather than proof of commit.  A lossless
    failover ([lost = []]) does not degrade the verdict; lost commits
    are counted in {!degradation.lost_suffix_commits} and weaken
    [Verified] to [Inconclusive] — never a false [Violation].  Raises
    [Invalid_argument] if [at < 0] or [epoch < 1]. *)

type degradation = {
  crashed_clients : int;
  indeterminate_txns : int;  (** transactions marked indeterminate *)
  dup_traces_dropped : int;  (** duplicate deliveries deduped by [feed] *)
  late_traces_dropped : int;  (** reported via {!note_late_dropped} *)
  lost_traces : int;  (** reported via {!note_lost_traces} *)
  inconclusive_reads : int;
      (** reads whose observed value matches an indeterminate write:
          neither verified nor a violation *)
  unterminated_txns : int;
      (** transactions with no terminal trace and no indeterminate mark
          at [finalize] (truncated collection); 0 before [finalize] *)
  restarts : int;  (** crash–recovery epochs ({!note_restart}) *)
  recovery_lost_records : int;
      (** WAL records damaged across all recoveries; non-zero weakens
          [Verified] to [Inconclusive] *)
  ambiguous_commits : int;
      (** commits still ambiguous after resolution
          ({!mark_ambiguous_commit} minus promotions); non-zero weakens
          [Verified] to [Inconclusive] *)
  failovers : int;  (** leader changes ({!note_failover}) *)
  lost_suffix_commits : int;
      (** commits reported lost with a failover's truncated log suffix;
          non-zero weakens [Verified] to [Inconclusive] *)
  coord_ambiguous_commits : int;
      (** commits still ambiguous because the 2PC coordinator crashed
          undecided ({!mark_coord_ambiguous} minus promotions); disjoint
          from [ambiguous_commits] by first-mark precedence; non-zero
          weakens [Verified] to [Inconclusive] *)
}

val degradation_free : degradation -> bool
(** All counters zero — the collection was complete and clean, so a
    bug-free report means [Verified], not merely "nothing found".
    [restarts] and [failovers] are exempt: clean multi-epoch and
    multi-leader traces still verify. *)

type report = {
  traces : int;
  committed : int;
  aborted : int;
  bugs_total : int;
  bugs : Bug.t list;  (** first 10_000, in detection order *)
  bugs_by_mechanism : (Bug.mechanism * int) list;
      (** violation counts per mechanism (complete, not capped) *)
  deps_deduced : int;
  deduced_by_source : (Dep.source * int) list;
  reads_checked : int;
  peak_live : int;  (** high-water mark of mirrored-state size (versions +
                        locks + FUW entries + graph nodes/edges + deferred
                        reads + live transactions + deduction-log entries)
                        — the memory metric *)
  final_live : int;
  pruned_versions : int;
  pruned_locks : int;
  pruned_fuw : int;
  pruned_graph : int;
  truncations : int;  (** {!truncate} calls *)
  truncated_deps : int;
      (** deduction-log entries folded into tallies by {!truncate};
          already included in [deps_deduced] *)
  resolved_ambiguous : int;
      (** ambiguous commits promoted to definitely-committed by a later
          committed read observing their writes *)
  degradation : degradation;
}

val report : t -> report

type verdict =
  | Verified  (** clean report over a complete, undegraded collection *)
  | Violation  (** at least one isolation violation was proven *)
  | Inconclusive of string
      (** no violation proven, but the collection degraded (crashes,
          losses, indeterminate outcomes) — the argument summarizes how.
          Soundness note: violations found under degradation are still
          reported as {!Violation}; degradation never hides a proven
          bug, it only prevents a hollow "verified". *)

val verdict : report -> verdict

val deduced : t -> Dep.kind -> int -> int -> bool
(** Deduction-log membership — feeds the Fig. 13 classification. *)

val live_size : t -> int
(** Current mirrored-state size (see {!report.peak_live}). *)

val set_dep_hook : t -> (Dep.t -> unit) -> unit
(** Subscribe to every fresh deduction (used by the naive cycle-search
    baseline to obtain the same dependencies Leopard deduces). *)

val encode : t -> string list
(** Serialize the full live state as tagged, tab-separated lines —
    deterministic (hashtables are dumped sorted; semantically ordered
    lists keep their exact order), so feeding the same remaining stream
    to a decoded checker reproduces an uninterrupted run's report
    field-for-field.  Call after {!truncate} for a compact image.  The
    dep hook is not serialized. *)

val decode :
  ?gc_every:int ->
  ?narrow_candidates:bool ->
  ?relaxed_reads:bool ->
  Il_profile.t ->
  string list ->
  (t, string) result
(** Rebuild a checker from {!encode} output.  The profile and flags
    must match the ones the checkpoint was written under ([Error]
    otherwise — resuming under different rules would silently change
    the verdict); any malformed record is an [Error], never a partially
    restored checker. *)
