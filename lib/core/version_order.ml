module Cell = Leopard_trace.Cell
module Trace = Leopard_trace.Trace
module Interval = Leopard_util.Interval

type version = {
  value : Trace.value;
  vtxn : int;
  write_iv : Interval.t;
  commit_iv : Interval.t;
  mutable readers : int list;
}

type chain = { mutable versions : version list (* ascending commit aft *) }

type t = { chains : chain Cell.Tbl.t; mutable live : int }

let create () = { chains = Cell.Tbl.create 4096; live = 0 }

let get_chain t cell =
  match Cell.Tbl.find_opt t.chains cell with
  | Some c -> c
  | None ->
    let c = { versions = [] } in
    Cell.Tbl.add t.chains cell c;
    c

let install t cell v ~predecessor ~successor =
  let c = get_chain t cell in
  let key x = Interval.aft x.commit_iv in
  (* Ascending insert; new versions usually go at the tail. *)
  let rec go prev = function
    | [] ->
      predecessor prev;
      successor None;
      [ v ]
    | hd :: tl when key v <= key hd ->
      predecessor prev;
      successor (Some hd);
      v :: hd :: tl
    | hd :: tl -> hd :: go (Some hd) tl
  in
  c.versions <- go None c.versions;
  t.live <- t.live + 1

let chain t cell =
  match Cell.Tbl.find_opt t.chains cell with
  | Some c -> c.versions
  | None -> []

let find_by_value t cell value =
  List.filter (fun v -> v.value = value) (chain t cell)

let live_versions t = t.live
let cells t = Cell.Tbl.length t.chains

let referenced_txns t =
  Cell.Tbl.fold
    (fun _ c acc ->
      List.fold_left (fun acc v -> v.vtxn :: (v.readers @ acc)) acc c.versions)
    t.chains []
  |> List.sort_uniq Int.compare

(* Checkpoint codec: one line per version, cell-major sorted so the dump
   is deterministic whatever the hashtable's insertion history; versions
   keep their in-chain (ascending commit aft) order and readers keep
   their list order, both of which downstream deductions observe. *)
let dump t =
  Cell.Tbl.fold (fun cell c acc -> (cell, c.versions) :: acc) t.chains []
  |> List.sort (fun (a, _) (b, _) -> Cell.compare a b)
  |> List.concat_map (fun ((cell : Cell.t), versions) ->
         List.map
           (fun v ->
             Printf.sprintf "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s"
               cell.Cell.table cell.Cell.row cell.Cell.col v.value v.vtxn
               (Interval.bef v.write_iv) (Interval.aft v.write_iv)
               (Interval.bef v.commit_iv) (Interval.aft v.commit_iv)
               (String.concat ","
                  (List.map string_of_int v.readers)))
           versions)

let restore lines =
  let t = create () in
  let tails = Cell.Tbl.create 64 in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ tb; rw; cl; value; vtxn; wb; wa; cb; ca; readers ] ->
        let cell =
          Cell.make ~table:(int_of_string tb) ~row:(int_of_string rw)
            ~col:(int_of_string cl)
        in
        let readers =
          if readers = "" then []
          else List.map int_of_string (String.split_on_char ',' readers)
        in
        let v =
          {
            value = int_of_string value;
            vtxn = int_of_string vtxn;
            write_iv =
              Interval.make ~bef:(int_of_string wb) ~aft:(int_of_string wa);
            commit_iv =
              Interval.make ~bef:(int_of_string cb) ~aft:(int_of_string ca);
            readers;
          }
        in
        let r =
          match Cell.Tbl.find_opt tails cell with
          | Some r -> r
          | None ->
            let r = ref [] in
            Cell.Tbl.add tails cell r;
            r
        in
        r := v :: !r;
        t.live <- t.live + 1
      | _ -> failwith "Version_order.restore: malformed version line")
    lines;
  (* lint: allow hashtbl-order — each binding becomes its own chain; the
     chains table is only ever consulted per cell *)
  Cell.Tbl.iter
    (fun cell r -> Cell.Tbl.replace t.chains cell { versions = List.rev !r })
    tails;
  t

let prune t ~horizon =
  let dropped = ref 0 in
  (* lint: allow hashtbl-order — per-cell in-place prune plus a
     commutative drop count *)
  Cell.Tbl.iter
    (fun _cell c ->
      (* The pivot for any snapshot taken at or after the horizon is at
         least the newest version with commit aft <= horizon.  Versions
         certainly installed before that pivot (aft <= pivot.bef) are
         garbage for every such snapshot; versions overlapping the pivot
         remain possible candidates and must be kept (Fig. 6). *)
      let rec newest_before acc = function
        | [] -> acc
        | v :: tl ->
          if Interval.aft v.commit_iv <= horizon then newest_before (Some v) tl
          else newest_before acc tl
      in
      match newest_before None c.versions with
      | None -> ()
      | Some pivot ->
        (* Any version at least as new as the horizon-pivot can become
           the pivot of some future snapshot; a version certainly before
           *all* of them is garbage for every future read. *)
        let boundary =
          List.fold_left
            (fun acc v ->
              if Interval.aft v.commit_iv >= Interval.aft pivot.commit_iv
              then min acc (Interval.bef v.commit_iv)
              else acc)
            max_int c.versions
        in
        let keep, garbage =
          List.partition
            (fun v -> v == pivot || Interval.aft v.commit_iv > boundary)
            c.versions
        in
        dropped := !dropped + List.length garbage;
        c.versions <- keep)
    t.chains;
  t.live <- t.live - !dropped;
  !dropped
