(** First-updater-wins verification (paper §V-C, Fig. 8, Theorem 4).

    Two committed transactions updating the same row must be serially
    ordered: one must commit before the other takes its snapshot,
    otherwise neither saw the other's update and the later commit is a
    lost update that FUW should have aborted.

    From traces we know each committed updater's snapshot-generation
    interval (its first operation) and its commit interval.  For a pair
    whose intervals overlap, Theorem 4 guarantees at most one serial
    order is feasible:

    - no feasible order → FUW violation (both are concurrent yet both
      committed);
    - exactly one → a ww dependency in that direction.

    Pairs are evaluated when the second transaction's commit trace is
    processed, so both triples are known. *)

module Interval = Leopard_util.Interval

type entry = {
  ftxn : int;
  snapshot_iv : Interval.t;  (** first-operation interval *)
  commit_iv : Interval.t;
}

type verdict = Violation | Ww of int * int | Unordered

val judge : a:entry -> b:entry -> verdict
(** ["a before b"] is feasible iff [a]'s commit can precede [b]'s
    snapshot. *)

type t

val create : unit -> t

val register :
  t ->
  row:int * int ->
  entry ->
  on_pair:(row:int * int -> other:entry -> verdict -> unit) ->
  unit
(** Add a committed updater of [row] and evaluate it against every updater
    of the row registered earlier. *)

val live_entries : t -> int

val referenced_txns : t -> int list
(** Sorted ids of every transaction with a retained registry entry — the
    FUW contribution to the truncation retained-set. *)

val dump : t -> string list
(** Serialize the registry, row-major sorted, preserving per-row entry
    order (it pins pair-evaluation order).  Inverse of {!restore}. *)

val restore : string list -> t
(** Rebuild a registry from {!dump} output.  Raises [Failure] on a
    malformed line. *)

val prune : t -> horizon:int -> int
(** Drop entries whose commit after-timestamp is [<= horizon]: any future
    updater's snapshot starts after the horizon, so the pair is certainly
    ordered and cannot violate FUW. *)
