(** Mutual-exclusion verification (paper §V-B, Fig. 7, Theorem 3).

    The verifier mirrors the lock table of a 2PL engine from traces alone:
    a write (or locking read) acquires an X lock on its row somewhere
    inside the operation's interval; a plain read under pure-2PL profiles
    acquires an S lock; every lock is released somewhere inside the
    transaction's terminal (commit/abort) interval.

    For two conflicting locks whose hold intervals cannot be ordered with
    certainty, Theorem 3 guarantees that at most one interleaving is
    compatible; {!judge} enumerates the interleavings:

    - no compatible order → ME violation (the engine must have held two
      incompatible locks simultaneously);
    - exactly one → a ww dependency is deduced in that direction.

    Pairs are evaluated when the {e second} of the two locks is released,
    so both release intervals are known. *)

module Interval = Leopard_util.Interval

type mode = S | X

type entry = {
  etxn : int;
  mode : mode;
  acquire_iv : Interval.t;  (** interval of the first locking op on the row *)
  mutable release_iv : Interval.t option;  (** terminal interval once known *)
}

type verdict =
  | Violation  (** no interleaving avoids simultaneous incompatible locks *)
  | Ww of int * int  (** the unique feasible order: (holder first, second) *)
  | Unordered  (** both orders feasible — cannot happen for well-formed
                   traces (Theorem 3); kept for defensive completeness *)

val judge : mine:entry -> other:entry -> verdict
(** Both entries must be released.  S/S pairs are compatible and are never
    passed to [judge] by {!release}. *)

type t

val create : unit -> t

val acquire : t -> row:int * int -> txn:int -> mode -> iv:Interval.t -> unit
(** Record a lock acquisition.  A transaction keeps at most one entry per
    mode on a row; an S-to-X upgrade adds a separate X entry dated at the
    upgrading operation (the exclusive hold only starts there), and an S
    request is subsumed by an existing X entry. *)

val release :
  t ->
  txn:int ->
  iv:Interval.t ->
  on_pair:(row:int * int -> mine:entry -> other:entry -> verdict -> unit) ->
  unit
(** Mark all of [txn]'s locks released at the terminal interval [iv], then
    evaluate every conflicting pair whose partner is already released. *)

val discard : t -> txn:int -> unit
(** Forget every entry of [txn] {e without} pair checks.  For
    indeterminate-outcome transactions (crashed clients): their release
    instant is unknown, so no overlap conclusion involving them is
    sound — they carry no ME obligations. *)

val live_entries : t -> int
(** Lock-table size — the ME memory metric. *)

val referenced_txns : t -> int list
(** Sorted ids of every transaction holding a retained lock entry — the
    lock-table contribution to the truncation retained-set. *)

val dump : t -> string list
(** Serialize the lock table (row-major, sorted row keys) and the
    per-transaction row lists, preserving both list orders — [release]
    iterates them, so they pin pair-evaluation order.  Inverse of
    {!restore}. *)

val restore : string list -> t
(** Rebuild a lock table from {!dump} output.  Raises [Failure] on a
    malformed line. *)

val prune : t -> horizon:int -> int
(** Drop released entries whose release after-timestamp is [<= horizon]:
    every future acquisition starts after the horizon, so such locks can
    only be certainly-ordered with it.  Returns entries dropped. *)
