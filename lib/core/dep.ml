type kind = Ww | Wr | Rw

let kind_to_string = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

let kind_of_string = function
  | "ww" -> Ww
  | "wr" -> Wr
  | "rw" -> Rw
  | s -> failwith ("Dep.kind_of_string: " ^ s)

type source =
  | Direct
  | From_cr
  | From_me
  | From_fuw
  | From_version_order
  | Derived_rw

let source_to_string = function
  | Direct -> "direct"
  | From_cr -> "cr"
  | From_me -> "me"
  | From_fuw -> "fuw"
  | From_version_order -> "version-order"
  | Derived_rw -> "derived-rw"

let all_sources =
  [ Direct; From_cr; From_me; From_fuw; From_version_order; Derived_rw ]

let source_of_string s =
  match List.find_opt (fun src -> String.equal (source_to_string src) s) all_sources with
  | Some src -> src
  | None -> failwith ("Dep.source_of_string: " ^ s)

(* declaration order; pins the report ordering of [Log.by_source] *)
let source_rank = function
  | Direct -> 0
  | From_cr -> 1
  | From_me -> 2
  | From_fuw -> 3
  | From_version_order -> 4
  | Derived_rw -> 5

type t = { kind : kind; from_txn : int; to_txn : int; source : source }

module Log = struct
  type dep = t

  type nonrec t = {
    entries : (kind * int * int, dep) Hashtbl.t;
    by_txn : (int, (kind * int * int) list) Hashtbl.t;
  }

  let create () = { entries = Hashtbl.create 4096; by_txn = Hashtbl.create 1024 }

  let remember_txn t txn key =
    let keys = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
    Hashtbl.replace t.by_txn txn (key :: keys)

  let add t (d : dep) =
    let key = (d.kind, d.from_txn, d.to_txn) in
    if Hashtbl.mem t.entries key then false
    else begin
      Hashtbl.replace t.entries key d;
      remember_txn t d.from_txn key;
      remember_txn t d.to_txn key;
      true
    end

  let mem t kind from_txn to_txn = Hashtbl.mem t.entries (kind, from_txn, to_txn)
  let count t = Hashtbl.length t.entries

  let by_source t =
    let tally = Hashtbl.create 8 in
    (* lint: allow hashtbl-order — counting into a tally is commutative *)
    Hashtbl.iter
      (fun _ d ->
        let c = Option.value ~default:0 (Hashtbl.find_opt tally d.source) in
        Hashtbl.replace tally d.source (c + 1))
      t.entries;
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) tally []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (source_rank a) (source_rank b))

  (* lint: allow hashtbl-order — the log is a set to its consumers: the
     checker re-derives any order it needs from transaction ids *)
  let iter t f = Hashtbl.iter (fun _ d -> f d) t.entries

  let forget_txn t txn =
    match Hashtbl.find_opt t.by_txn txn with
    | None -> ()
    | Some keys ->
      Hashtbl.remove t.by_txn txn;
      List.iter (Hashtbl.remove t.entries) keys

  let txns t =
    Hashtbl.fold (fun txn _ acc -> txn :: acc) t.by_txn []
    |> List.sort_uniq Int.compare

  let take_txn t txn =
    match Hashtbl.find_opt t.by_txn txn with
    | None -> []
    | Some keys ->
      Hashtbl.remove t.by_txn txn;
      List.filter_map
        (fun key ->
          match Hashtbl.find_opt t.entries key with
          | None -> None
          | Some d ->
            Hashtbl.remove t.entries key;
            Some d)
        keys

  let kind_rank = function Ww -> 0 | Wr -> 1 | Rw -> 2

  let entries t =
    Hashtbl.fold (fun _ d acc -> d :: acc) t.entries []
    |> List.sort (fun a b ->
           let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
           if c <> 0 then c
           else
             let c = Int.compare a.from_txn b.from_txn in
             if c <> 0 then c
             else
               let c = Int.compare a.to_txn b.to_txn in
               if c <> 0 then c
               else Int.compare (source_rank a.source) (source_rank b.source))
end
