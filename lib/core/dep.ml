type kind = Ww | Wr | Rw

let kind_to_string = function Ww -> "ww" | Wr -> "wr" | Rw -> "rw"

type source =
  | Direct
  | From_cr
  | From_me
  | From_fuw
  | From_version_order
  | Derived_rw

let source_to_string = function
  | Direct -> "direct"
  | From_cr -> "cr"
  | From_me -> "me"
  | From_fuw -> "fuw"
  | From_version_order -> "version-order"
  | Derived_rw -> "derived-rw"

(* declaration order; pins the report ordering of [Log.by_source] *)
let source_rank = function
  | Direct -> 0
  | From_cr -> 1
  | From_me -> 2
  | From_fuw -> 3
  | From_version_order -> 4
  | Derived_rw -> 5

type t = { kind : kind; from_txn : int; to_txn : int; source : source }

module Log = struct
  type dep = t

  type nonrec t = {
    entries : (kind * int * int, dep) Hashtbl.t;
    by_txn : (int, (kind * int * int) list) Hashtbl.t;
  }

  let create () = { entries = Hashtbl.create 4096; by_txn = Hashtbl.create 1024 }

  let remember_txn t txn key =
    let keys = Option.value ~default:[] (Hashtbl.find_opt t.by_txn txn) in
    Hashtbl.replace t.by_txn txn (key :: keys)

  let add t (d : dep) =
    let key = (d.kind, d.from_txn, d.to_txn) in
    if Hashtbl.mem t.entries key then false
    else begin
      Hashtbl.replace t.entries key d;
      remember_txn t d.from_txn key;
      remember_txn t d.to_txn key;
      true
    end

  let mem t kind from_txn to_txn = Hashtbl.mem t.entries (kind, from_txn, to_txn)
  let count t = Hashtbl.length t.entries

  let by_source t =
    let tally = Hashtbl.create 8 in
    (* lint: allow hashtbl-order — counting into a tally is commutative *)
    Hashtbl.iter
      (fun _ d ->
        let c = Option.value ~default:0 (Hashtbl.find_opt tally d.source) in
        Hashtbl.replace tally d.source (c + 1))
      t.entries;
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) tally []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (source_rank a) (source_rank b))

  (* lint: allow hashtbl-order — the log is a set to its consumers: the
     checker re-derives any order it needs from transaction ids *)
  let iter t f = Hashtbl.iter (fun _ d -> f d) t.entries

  let forget_txn t txn =
    match Hashtbl.find_opt t.by_txn txn with
    | None -> ()
    | Some keys ->
      Hashtbl.remove t.by_txn txn;
      List.iter (Hashtbl.remove t.entries) keys
end
