(** Bug descriptors — what Leopard reports when a mechanism is violated.

    Each descriptor names the violated mechanism, the transactions and the
    data involved, and a human-readable explanation, mirroring the paper's
    "bug descriptor" output of Algorithm 2. *)

module Cell = Leopard_trace.Cell

type mechanism = Cr | Me | Fuw | Sc

val mechanism_to_string : mechanism -> string

val mechanism_rank : mechanism -> int
(** Declaration-order rank (Cr = 0 … Sc = 3), for typed sorts. *)

val compare_mechanism : mechanism -> mechanism -> int

type t = {
  mechanism : mechanism;
  anomaly : Anomaly.t option;  (** Adya-style classification when known *)
  txns : int list;  (** transactions involved *)
  cell : Cell.t option;  (** cell, when the violation is data-specific *)
  row : (int * int) option;  (** row, for lock-level violations *)
  detail : string;
}

val make :
  mechanism:mechanism ->
  txns:int list ->
  ?anomaly:Anomaly.t ->
  ?cell:Cell.t ->
  ?row:int * int ->
  string ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
