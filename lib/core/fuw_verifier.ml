module Interval = Leopard_util.Interval

type entry = {
  ftxn : int;
  snapshot_iv : Interval.t;
  commit_iv : Interval.t;
}

type verdict = Violation | Ww of int * int | Unordered

let judge ~a ~b =
  let a_first = Interval.possibly_before a.commit_iv b.snapshot_iv in
  let b_first = Interval.possibly_before b.commit_iv a.snapshot_iv in
  match (a_first, b_first) with
  | false, false -> Violation
  | true, false -> Ww (a.ftxn, b.ftxn)
  | false, true -> Ww (b.ftxn, a.ftxn)
  | true, true -> Unordered

type t = {
  rows : (int * int, entry list ref) Hashtbl.t;
  mutable live : int;
}

let create () = { rows = Hashtbl.create 1024; live = 0 }

let register t ~row entry ~on_pair =
  let entries =
    match Hashtbl.find_opt t.rows row with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.rows row r;
      r
  in
  List.iter
    (fun other ->
      if other.ftxn <> entry.ftxn then
        on_pair ~row ~other (judge ~a:other ~b:entry))
    !entries;
  entries := entry :: !entries;
  t.live <- t.live + 1

let live_entries t = t.live

let prune t ~horizon =
  let dropped = ref 0 in
  (* lint: allow hashtbl-order — per-key in-place prune plus a
     commutative drop count *)
  Hashtbl.iter
    (fun _row entries ->
      let keep, drop =
        List.partition
          (fun e -> Interval.aft e.commit_iv > horizon)
          !entries
      in
      dropped := !dropped + List.length drop;
      entries := keep)
    t.rows;
  t.live <- t.live - !dropped;
  !dropped
