module Interval = Leopard_util.Interval

type entry = {
  ftxn : int;
  snapshot_iv : Interval.t;
  commit_iv : Interval.t;
}

type verdict = Violation | Ww of int * int | Unordered

let judge ~a ~b =
  let a_first = Interval.possibly_before a.commit_iv b.snapshot_iv in
  let b_first = Interval.possibly_before b.commit_iv a.snapshot_iv in
  match (a_first, b_first) with
  | false, false -> Violation
  | true, false -> Ww (a.ftxn, b.ftxn)
  | false, true -> Ww (b.ftxn, a.ftxn)
  | true, true -> Unordered

type t = {
  rows : (int * int, entry list ref) Hashtbl.t;
  mutable live : int;
}

let create () = { rows = Hashtbl.create 1024; live = 0 }

let register t ~row entry ~on_pair =
  let entries =
    match Hashtbl.find_opt t.rows row with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace t.rows row r;
      r
  in
  List.iter
    (fun other ->
      if other.ftxn <> entry.ftxn then
        on_pair ~row ~other (judge ~a:other ~b:entry))
    !entries;
  entries := entry :: !entries;
  t.live <- t.live + 1

let live_entries t = t.live

let referenced_txns t =
  Hashtbl.fold
    (fun _ entries acc ->
      List.fold_left (fun acc e -> e.ftxn :: acc) acc !entries)
    t.rows []
  |> List.sort_uniq Int.compare

(* Checkpoint codec: one line per entry, row-major sorted, entries in
   list order ([register] evaluates a newcomer against the list in that
   order, pinning pair-evaluation order). *)
let dump t =
  Hashtbl.fold (fun row entries acc -> (row, !entries) :: acc) t.rows []
  |> List.sort (fun ((ta, ra), _) ((tb, rb), _) ->
         let c = Int.compare ta tb in
         if c <> 0 then c else Int.compare ra rb)
  |> List.concat_map (fun ((table, row), entries) ->
         List.map
           (fun e ->
             Printf.sprintf "%d\t%d\t%d\t%d\t%d\t%d\t%d" table row e.ftxn
               (Interval.bef e.snapshot_iv) (Interval.aft e.snapshot_iv)
               (Interval.bef e.commit_iv) (Interval.aft e.commit_iv))
           entries)

let restore lines =
  let t = create () in
  let tails = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match String.split_on_char '\t' line with
      | [ table; row; ftxn; sb; sa; cb; ca ] ->
        let row = (int_of_string table, int_of_string row) in
        let e =
          {
            ftxn = int_of_string ftxn;
            snapshot_iv =
              Interval.make ~bef:(int_of_string sb) ~aft:(int_of_string sa);
            commit_iv =
              Interval.make ~bef:(int_of_string cb) ~aft:(int_of_string ca);
          }
        in
        let r =
          match Hashtbl.find_opt tails row with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace tails row r;
            r
        in
        r := e :: !r;
        t.live <- t.live + 1
      | _ -> failwith "Fuw_verifier.restore: malformed line")
    lines;
  (* lint: allow hashtbl-order — each binding becomes its own row list;
     the rows table is only consulted per key *)
  Hashtbl.iter
    (fun row r -> Hashtbl.replace t.rows row (ref (List.rev !r)))
    tails;
  t

let prune t ~horizon =
  let dropped = ref 0 in
  (* lint: allow hashtbl-order — per-key in-place prune plus a
     commutative drop count *)
  Hashtbl.iter
    (fun _row entries ->
      let keep, drop =
        List.partition
          (fun e -> Interval.aft e.commit_iv > horizon)
          !entries
      in
      dropped := !dropped + List.length drop;
      entries := keep)
    t.rows;
  t.live <- t.live - !dropped;
  !dropped
